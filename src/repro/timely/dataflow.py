"""A timely-dataflow-style batch layer for acyclic data-parallel jobs.

The paper's Graphsurge uses Timely Dataflow *directly* (without the
differential layer) for the embarrassingly parallel steps: evaluating view
predicates over edges (the EBM), computing aggregate views, and the
Hamming-distance step of Algorithm 1. This module provides that layer: a
small BSP dataflow where every stream is sharded across W simulated
workers, operators process shards independently, and ``exchange`` moves
records between workers by key hash (the cost model of a timely cluster).

Iterative/incremental computations do NOT belong here — they run on
:mod:`repro.differential`, which layers differential semantics on the same
worker/metering substrate.

Example::

    td = TimelyDataflow(workers=4)
    edges = td.input("edges")
    degrees = (edges
               .exchange(lambda rec: rec[0])
               .aggregate(lambda rec: rec[0], lambda recs: len(recs)))
    out = degrees.capture("degrees")
    td.run({"edges": [(0, 1), (0, 2), (1, 2)]})
    assert sorted(out.records) == [(0, 2), (1, 1)]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DataflowError
from repro.timely.meter import WorkMeter
from repro.timely.worker import shard_for

Shards = List[List[Any]]


class _TOperator:
    """A node of the batch dataflow graph."""

    def __init__(self, dataflow: "TimelyDataflow", name: str,
                 inputs: Sequence["_TOperator"]):
        self.dataflow = dataflow
        self.name = name
        self.inputs = list(inputs)
        self.output: Optional[Shards] = None
        dataflow._register(self)

    def evaluate(self, input_shards: List[Shards]) -> Shards:
        raise NotImplementedError

    def _empty(self) -> Shards:
        return [[] for _ in range(self.dataflow.workers)]


class _InputOp(_TOperator):
    def __init__(self, dataflow, name):
        super().__init__(dataflow, name, [])
        self.pending: Optional[List[Any]] = None

    def evaluate(self, input_shards):
        shards = self._empty()
        records = self.pending or []
        # Inputs arrive round-robin, like records read from partitioned
        # files in timely.
        for index, record in enumerate(records):
            shards[index % self.dataflow.workers].append(record)
        self.pending = None
        return shards


class _MapOp(_TOperator):
    def __init__(self, dataflow, name, source, fn, flat=False):
        super().__init__(dataflow, name, [source])
        self.fn = fn
        self.flat = flat

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        for worker, shard in enumerate(input_shards[0]):
            for record in shard:
                meter.record(worker)
                if self.flat:
                    out[worker].extend(self.fn(record))
                else:
                    out[worker].append(self.fn(record))
        return out


class _FilterOp(_TOperator):
    def __init__(self, dataflow, name, source, predicate):
        super().__init__(dataflow, name, [source])
        self.predicate = predicate

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        for worker, shard in enumerate(input_shards[0]):
            for record in shard:
                meter.record(worker)
                if self.predicate(record):
                    out[worker].append(record)
        return out


class _ExchangeOp(_TOperator):
    def __init__(self, dataflow, name, source, key_fn):
        super().__init__(dataflow, name, [source])
        self.key_fn = key_fn

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        workers = self.dataflow.workers
        for worker, shard in enumerate(input_shards[0]):
            for record in shard:
                meter.record(worker)
                out[shard_for(self.key_fn(record), workers)].append(record)
        return out


class _ConcatOp(_TOperator):
    def evaluate(self, input_shards):
        out = self._empty()
        for shards in input_shards:
            for worker, shard in enumerate(shards):
                out[worker].extend(shard)
        return out


class _AggregateOp(_TOperator):
    """Group by key *within each worker* and fold each group.

    Callers exchange by the group key first (as in timely) so each group
    lives on exactly one worker; :meth:`TStream.aggregate` does this
    automatically.
    """

    def __init__(self, dataflow, name, source, key_fn, fold):
        super().__init__(dataflow, name, [source])
        self.key_fn = key_fn
        self.fold = fold

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        for worker, shard in enumerate(input_shards[0]):
            groups: Dict[Any, List[Any]] = {}
            for record in shard:
                meter.record(worker)
                groups.setdefault(self.key_fn(record), []).append(record)
            for key, records in groups.items():
                meter.record(worker)
                out[worker].append((key, self.fold(records)))
        return out


class _JoinOp(_TOperator):
    """Hash equi-join of two keyed streams (records are (key, value))."""

    def __init__(self, dataflow, name, left, right, merge):
        super().__init__(dataflow, name, [left, right])
        self.merge = merge

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        for worker in range(self.dataflow.workers):
            table: Dict[Any, List[Any]] = {}
            for key, value in input_shards[0][worker]:
                meter.record(worker)
                table.setdefault(key, []).append(value)
            for key, value in input_shards[1][worker]:
                meter.record(worker)
                for other in table.get(key, ()):
                    out[worker].append(self.merge(key, other, value))
        return out


class _CaptureOp(_TOperator):
    def __init__(self, dataflow, name, source):
        super().__init__(dataflow, name, [source])
        self.records: List[Any] = []

    def evaluate(self, input_shards):
        self.records = [record
                        for shard in input_shards[0]
                        for record in shard]
        return input_shards[0]


class TStream:
    """Fluent handle on a batch stream."""

    def __init__(self, dataflow: "TimelyDataflow", op: _TOperator):
        self.dataflow = dataflow
        self.op = op

    def map(self, fn: Callable[[Any], Any], name: str = "map") -> "TStream":
        return TStream(self.dataflow,
                       _MapOp(self.dataflow, name, self.op, fn))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]],
                 name: str = "flat_map") -> "TStream":
        return TStream(self.dataflow,
                       _MapOp(self.dataflow, name, self.op, fn, flat=True))

    def filter(self, predicate: Callable[[Any], bool],
               name: str = "filter") -> "TStream":
        return TStream(self.dataflow,
                       _FilterOp(self.dataflow, name, self.op, predicate))

    def exchange(self, key_fn: Callable[[Any], Any],
                 name: str = "exchange") -> "TStream":
        """Re-shard records across workers by a key (timely's exchange)."""
        return TStream(self.dataflow,
                       _ExchangeOp(self.dataflow, name, self.op, key_fn))

    def concat(self, *others: "TStream") -> "TStream":
        ops = [self.op] + [other.op for other in others]
        return TStream(self.dataflow,
                       _ConcatOp(self.dataflow, "concat", ops))

    def aggregate(self, key_fn: Callable[[Any], Any],
                  fold: Callable[[List[Any]], Any],
                  name: str = "aggregate") -> "TStream":
        """Exchange by key, then fold each group: ``(key, fold(records))``."""
        exchanged = self.exchange(key_fn, name=name + ".exchange")
        return TStream(self.dataflow,
                       _AggregateOp(self.dataflow, name, exchanged.op,
                                    key_fn, fold))

    def join(self, other: "TStream",
             merge: Callable[[Any, Any, Any], Any],
             name: str = "join") -> "TStream":
        """Hash join of (key, value) streams; both sides are exchanged."""
        left = self.exchange(lambda rec: rec[0], name=name + ".xl")
        right = other.exchange(lambda rec: rec[0], name=name + ".xr")
        return TStream(self.dataflow,
                       _JoinOp(self.dataflow, name, left.op, right.op,
                               merge))

    def capture(self, name: str = "capture") -> _CaptureOp:
        return _CaptureOp(self.dataflow, name, self.op)


class TimelyDataflow:
    """A runnable batch dataflow over simulated workers."""

    def __init__(self, workers: int = 1, meter: Optional[WorkMeter] = None):
        self.workers = max(1, workers)
        self.meter = meter if meter is not None else WorkMeter(self.workers)
        self._operators: List[_TOperator] = []
        self._inputs: Dict[str, _InputOp] = {}

    def _register(self, op: _TOperator) -> None:
        self._operators.append(op)

    def input(self, name: str) -> TStream:
        if name in self._inputs:
            raise DataflowError(f"duplicate input {name!r}")
        op = _InputOp(self, name)
        self._inputs[name] = op
        return TStream(self, op)

    def run(self, inputs: Optional[Dict[str, Iterable[Any]]] = None) -> None:
        """Execute the dataflow once over the given input records.

        Operators run in construction (= topological) order; each operator
        pass is one superstep.
        """
        for name, records in (inputs or {}).items():
            op = self._inputs.get(name)
            if op is None:
                raise DataflowError(f"unknown input {name!r}")
            op.pending = list(records)
        for op in self._operators:
            shards = [upstream.output for upstream in op.inputs]
            for upstream, shard in zip(op.inputs, shards):
                if shard is None:
                    raise DataflowError(
                        f"operator {op.name} ran before its input "
                        f"{upstream.name}")
            self.meter.begin_step()
            op.output = op.evaluate(shards)
            self.meter.end_step()
