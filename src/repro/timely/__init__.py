"""Timely-dataflow substrate: worker sharding and work metering.

The original Graphsurge runs on Timely Dataflow, which scales operators
across workers by partitioning records on a key. This package provides the
equivalent execution-model pieces for the Python engine:

* :func:`repro.timely.worker.shard_for` — deterministic record→worker
  assignment (hash partitioning, as TD's ``exchange`` does).
* :class:`repro.timely.meter.WorkMeter` — per-worker, per-superstep work
  accounting used to compute *simulated parallel time*, the deterministic
  cost metric reported by the benchmark harness (see DESIGN.md §2.3/§2.4).

The dataflow-graph plumbing itself lives in :mod:`repro.differential`, since
differential dataflow is a layer over timely and this reproduction collapses
the two into one engine (the paper's analytics all run through DD anyway).
"""

from repro.timely.meter import WorkMeter
from repro.timely.worker import shard_for, stable_hash

__all__ = ["WorkMeter", "shard_for", "stable_hash"]
