"""Process-parallel worker cluster: exchange channels over forked workers.

The engine's default backend runs all W worker shards in one loop and only
*simulates* parallel time (:mod:`repro.timely.meter`). This module provides
the ``process`` backend: W real ``multiprocessing`` workers, each owning the
keyed state of its shard, connected to the coordinator by pickle-framed
duplex pipes (the exchange channels).

Architecture — coordinator + sharded-state workers
--------------------------------------------------

The coordinator keeps the *driver*: pass scheduling, timestamps, budgets,
fault plans, the :class:`~repro.timely.meter.WorkMeter`, and all linear
(per-record, stateless) operators. Keyed operators run their per-key
kernels on the worker that owns the key (``shard_for(key, W)``); a kernel
returns its outputs **plus the meter events it would have recorded**, and
the coordinator replays those events into the real meter in the original
key order. This is what makes the two backends observationally identical:
``total_work``, ``parallel_time``, superstep counts, fault-plan firing and
tracer streams are all byte-for-byte the same as the inline loop, because
the exact same sequence of ``meter.record`` calls happens on the
coordinator either way.

Workers are forked (not spawned) so they inherit the dataflow graph —
including user closures, which are not picklable — without any
serialization. The fork happens lazily, at the first superstep, when the
graph is frozen but every trace is still empty; from then on the
coordinator never touches keyed traces, so resident state is genuinely
sharded across processes.

Wire protocol
-------------

Every frame is a pickled 3-tuple ``(kind, op_index, payload)``:

``("update", op, (tag, time, grouped))``
    Fire-and-forget trace update for the keys in ``grouped`` (all owned by
    the receiving worker). No reply; pipes are FIFO, so updates always
    land before any task that depends on them. Errors are buffered and
    surfaced at the next synchronous exchange.
``("task", op, (header, items))``
    Run the operator's per-key kernel for each ``(key, payload)`` in
    ``items``. Replies ``("ok", {key: (events, result)})``.
``("stats", None, None)``
    Replies ``("ok", {op_index: resident_record_count})``.
``("compact", None, epoch)``
    Fire-and-forget: compact every registered operator's trace history
    below ``epoch`` (streaming GC). FIFO ordering makes it safe to
    interleave with updates; errors are buffered like update errors.
``("shutdown", None, None)``
    Worker exits its loop.

The per-superstep barrier is implicit in the reply drain: the coordinator
never advances past a keyed pass until every involved worker has answered,
and on error it still drains every outstanding reply (in worker-index
order) before raising, so no stale frame can corrupt a later exchange.

Failure handling
----------------

A worker that dies mid-superstep (or stops answering within
``task_timeout``) surfaces as :class:`repro.errors.WorkerFailedError`
carrying the worker index and the superstep at which the coordinator
detected it. Detection is a poll loop with an aliveness check, and
``close()`` bounds its joins, so the coordinator never hangs. Workers are
daemonic as a leak backstop: they die with the coordinator no matter what.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, DataflowError, WorkerFailedError
from repro.timely.worker import shard_for

#: Execution backends understood by every ``backend=`` knob in the system.
BACKENDS = ("inline", "process")


def validate_backend(backend: str, workers: int) -> str:
    """Validate a ``(backend, workers)`` combination, returning ``backend``.

    Raises :class:`~repro.errors.ConfigError` (never a bare crash) on
    unknown backend names, on ``backend="process"`` with fewer than two
    workers (one real process would only add pickling overhead — ask for
    the inline backend instead), and on platforms without the ``fork``
    start method (user closures in dataflow graphs are not picklable, so
    the process backend requires fork inheritance).
    """
    if backend not in BACKENDS:
        raise ConfigError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    if backend == "process":
        if workers < 2:
            raise ConfigError(
                f"backend='process' requires workers >= 2, got {workers}; "
                f"a single-worker process backend would pay exchange "
                f"serialization for no parallelism — use backend='inline'")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "backend='process' requires the 'fork' start method "
                "(worker processes inherit the dataflow graph, including "
                "unpicklable user closures); this platform offers only "
                f"{multiprocessing.get_all_start_methods()}")
    return backend


def _worker_main(index: int, conn, registry: Dict[int, Any]) -> None:
    """Recv/dispatch loop run inside each forked worker process."""
    import signal

    # Fork inherits the coordinator's signal dispositions. Under the serve
    # daemon that means asyncio's SIGTERM handler — which only pokes the
    # (parent's) wakeup fd — so a terminate() aimed at this worker would be
    # swallowed and multiprocessing's exit-time join() on it would hang
    # the coordinator forever. Restore the default so SIGTERM kills us,
    # and ignore SIGINT: a terminal Ctrl-C signals the whole process
    # group, and teardown order belongs to the coordinator's close().
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # An async ("update") error cannot be reported when it happens — there
    # is no reply slot — so buffer the first one and surface it at the
    # next synchronous exchange instead of processing further messages
    # against known-bad state.
    failure: Optional[BaseException] = None
    while True:
        try:
            kind, op_index, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind == "shutdown":
            break
        if kind == "update":
            if failure is None:
                try:
                    registry[op_index].remote_update(payload)
                except BaseException as exc:  # surfaced at next sync point
                    failure = exc
            continue
        if kind == "compact":
            if failure is None:
                try:
                    for op in registry.values():
                        op.compact_below(payload)
                except BaseException as exc:  # surfaced at next sync point
                    failure = exc
            continue
        if failure is not None:
            reply: Tuple[str, Any] = ("err", failure)
        elif kind == "stats":
            try:
                reply = ("ok", {op: registry[op].remote_stats()
                                for op in registry})
            except BaseException as exc:
                reply = ("err", exc)
        elif kind == "task":
            try:
                reply = ("ok", registry[op_index].remote_task(payload))
            except BaseException as exc:
                reply = ("err", exc)
        else:
            reply = ("err", DataflowError(
                f"worker {index}: unknown message kind {kind!r}"))
        try:
            # Connection.send pickles fully before writing, so a pickling
            # failure here has not corrupted the frame stream and we can
            # still ship a well-formed error.
            conn.send(reply)
        except Exception as exc:
            conn.send(("err", DataflowError(
                f"worker {index}: reply could not be serialized: "
                f"{exc!r}")))
    conn.close()


class ProcessCluster:
    """W forked workers plus the coordinator-side exchange machinery.

    ``registry`` maps a stable operator index to the operator object whose
    ``remote_update`` / ``remote_task`` / ``remote_stats`` methods the
    worker dispatches to. The registry is captured by fork: construct the
    cluster only once the dataflow graph is complete (and, for byte-
    identical sharded state, before any keyed trace holds records).

    ``superstep`` is a zero-argument callable reporting the driver's
    current superstep counter; it is only consulted when building a
    :class:`~repro.errors.WorkerFailedError`.
    """

    def __init__(self, workers: int, registry: Dict[int, Any],
                 superstep: Optional[Callable[[], int]] = None,
                 task_timeout: float = 120.0):
        if workers < 2:
            raise ConfigError(
                f"ProcessCluster requires workers >= 2, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        self._superstep = superstep if superstep is not None else lambda: -1
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        self._closed = False
        ctx = multiprocessing.get_context("fork")
        for index in range(workers):
            # Create each pipe immediately before its fork so child i
            # inherits as few sibling descriptors as possible.
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main,
                               args=(index, child_conn, registry),
                               daemon=True,
                               name=f"repro-worker-{index}")
            proc.start()
            child_conn.close()  # the child holds its own copy
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # -- low-level exchange ---------------------------------------------------

    def _send(self, worker: int, message: Tuple[str, Any, Any]) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerFailedError(
                worker, self._superstep(),
                f"exchange channel closed while sending ({exc!r})")

    def _recv(self, worker: int) -> Any:
        """Receive one reply frame, bounded by ``task_timeout``."""
        conn = self._conns[worker]
        proc = self._procs[worker]
        deadline = _time.monotonic() + self.task_timeout
        while True:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise WorkerFailedError(
                    worker, self._superstep(),
                    f"no reply within {self.task_timeout:.0f}s")
            if conn.poll(min(0.05, remaining)):
                break
            if not proc.is_alive():
                # One last poll: the worker may have replied and then
                # exited between our checks.
                if conn.poll(0):
                    break
                raise WorkerFailedError(
                    worker, self._superstep(),
                    f"process exited with code {proc.exitcode}")
        try:
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerFailedError(
                worker, self._superstep(),
                f"exchange channel closed mid-reply ({exc!r})")
        if status == "err":
            if isinstance(value, BaseException):
                raise value
            raise DataflowError(f"worker {worker} reported: {value!r}")
        return value

    # -- coordinator API ------------------------------------------------------

    def post_updates(self, op_index: int, tag: str, time: Any,
                     grouped: Dict[Any, Any]) -> None:
        """Route a keyed trace update to each owning worker (no reply)."""
        batches: Dict[int, Dict[Any, Any]] = {}
        for key, values in grouped.items():
            batches.setdefault(shard_for(key, self.workers), {})[key] = values
        for worker, sub in batches.items():
            self._send(worker, ("update", op_index, (tag, time, sub)))

    def run_tasks(self, op_index: int, header: Any,
                  items: Iterable[Tuple[Any, Any]],
                  route: Optional[Callable[[Any], int]] = None,
                  ) -> Dict[Any, Any]:
        """Fan a keyed task batch out to its owners; merge the replies.

        ``items`` is an ordered ``[(key, payload)]`` sequence; each key is
        routed via ``route`` (default: ``shard_for``). Returns the union of
        the per-worker ``{key: (events, result)}`` replies. On error, every
        outstanding reply is drained first and the first failure (in
        worker-index order) is raised, so the exchange channels stay
        frame-aligned for the caller's cleanup path.
        """
        batches: Dict[int, List[Tuple[Any, Any]]] = {}
        for key, payload in items:
            worker = route(key) if route is not None else shard_for(
                key, self.workers)
            batches.setdefault(worker, []).append((key, payload))
        for worker in sorted(batches):
            self._send(worker, ("task", op_index, (header, batches[worker])))
        merged: Dict[Any, Any] = {}
        error: Optional[BaseException] = None
        for worker in sorted(batches):
            try:
                merged.update(self._recv(worker))
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return merged

    def compact(self, epoch: int) -> None:
        """Broadcast a trace-compaction bound to every worker (no reply).

        Workers compact the keyed traces they own below ``epoch``; any
        failure surfaces at the next synchronous exchange, exactly like a
        failed update.
        """
        for worker in range(self.workers):
            self._send(worker, ("compact", None, epoch))

    def stats(self) -> Dict[int, int]:
        """Sum each registered operator's resident record count over workers."""
        for worker in range(self.workers):
            self._send(worker, ("stats", None, None))
        totals: Dict[int, int] = {}
        error: Optional[BaseException] = None
        for worker in range(self.workers):
            try:
                for op_index, count in self._recv(worker).items():
                    totals[op_index] = totals.get(op_index, 0) + count
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return totals

    def alive(self) -> bool:
        return (not self._closed
                and all(proc.is_alive() for proc in self._procs))

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down; bounded, idempotent, never hangs."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("shutdown", None, None))
            except Exception:
                pass  # already dead — terminate below
        deadline = _time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - _time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass

    def __del__(self):
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
