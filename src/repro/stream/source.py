"""Edge-stream sources: batches of appends/retracts feeding the engine.

A :class:`StreamBatch` is the unit of streaming ingestion: two multisets
of ``(src, dst, weight)`` triples, one appended and one retracted, that
the engine absorbs as a single dataflow epoch. Sources are plain lists
of batches (finite, deterministic, replayable — the same discipline as
the fuzzer's generated collections):

* :func:`churn_batches` — seeded random append/retract churn, the
  streaming twin of the fuzzer's churn grammar
  (:func:`repro.verify.generator.random_churn_collection`).
* :func:`replay_batches` — replay a property graph's edges in timestamp
  order as append-only batches (temporal replay).
* :func:`sliding_batches` — wrap an append-only source so each batch
  also *retracts* the edges that fall out of a sliding window of the
  last ``width`` batches; :func:`cumulative_batches` is the identity
  (nothing ever expires). Window semantics mirror
  :mod:`repro.core.windows`: sliding evicts, cumulative only grows.
* :func:`batches_from_collection` — view a materialized view
  collection's difference sets as a stream (what the fuzzer's stream
  invariant drives).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: One streamed edge: (src, dst, weight).
EdgeTriple = Tuple[int, int, int]


@dataclass(frozen=True)
class StreamBatch:
    """One ingestion step: edges appended and edges retracted."""

    appends: Tuple[EdgeTriple, ...] = ()
    retracts: Tuple[EdgeTriple, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "appends",
                           tuple(tuple(e) for e in self.appends))
        object.__setattr__(self, "retracts",
                           tuple(tuple(e) for e in self.retracts))

    @property
    def size(self) -> int:
        return len(self.appends) + len(self.retracts)

    def is_empty(self) -> bool:
        return not self.appends and not self.retracts

    def to_record(self) -> dict:
        """JSON-safe form (the stream journal's per-batch record)."""
        return {"appends": [list(e) for e in self.appends],
                "retracts": [list(e) for e in self.retracts]}

    @classmethod
    def from_record(cls, record: dict) -> "StreamBatch":
        return cls(appends=tuple(tuple(e) for e in record["appends"]),
                   retracts=tuple(tuple(e) for e in record["retracts"]))


def churn_batches(seed: int, epochs: int, num_nodes: int = 12,
                  churn: int = 4,
                  base_edges: int = 0) -> List[StreamBatch]:
    """Seeded random churn: each batch retracts and appends a few edges.

    Mirrors the fuzzer's churn grammar: edge identity is the
    ``(src, dst, weight)`` triple, retractions are sampled from the live
    set only (no invalid batches), weights are drawn from 1..5, and
    ~8% of batches are deliberate no-ops. The same seed always yields
    the same batches. ``base_edges`` edges are emitted in an initial
    append-only batch when positive.
    """
    if epochs <= 0:
        raise ConfigError("churn_batches: epochs must be positive")
    if num_nodes < 2:
        raise ConfigError("churn_batches: num_nodes must be at least 2")
    rng = random.Random(seed)
    current: Dict[Tuple[int, int], EdgeTriple] = {}

    def fresh_edges(count: int) -> List[EdgeTriple]:
        out = []
        for _ in range(count):
            u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if u == v or (u, v) in current:
                continue
            triple = (u, v, rng.randint(1, 5))
            current[(u, v)] = triple
            out.append(triple)
        return out

    batches: List[StreamBatch] = []
    if base_edges > 0:
        batches.append(StreamBatch(appends=tuple(fresh_edges(base_edges))))
    while len(batches) < epochs:
        if rng.random() < 0.08:
            batches.append(StreamBatch())  # deliberate no-op epoch
            continue
        removals = rng.randint(0, min(churn, len(current)))
        retracts = [current.pop(pair)
                    for pair in rng.sample(sorted(current), removals)]
        appends = fresh_edges(rng.randint(0, churn))
        batches.append(StreamBatch(appends=tuple(appends),
                                   retracts=tuple(retracts)))
    return batches


def replay_batches(graph, prop: str = "ts", num_batches: int = 10,
                   weight: Optional[str] = None,
                   default_weight: int = 1) -> List[StreamBatch]:
    """Replay a property graph's edges in ``prop`` order, append-only.

    Edges are sorted by the integer property ``prop`` (ties broken by
    endpoint ids, so replay is deterministic) and chunked into
    ``num_batches`` nearly equal batches — temporal ingestion of a graph
    that was recorded with timestamps.
    """
    if num_batches <= 0:
        raise ConfigError("replay_batches: num_batches must be positive")
    stamped = []
    for edge in graph.edges:
        ts = edge.properties.get(prop)
        if ts is None:
            raise ConfigError(
                f"replay_batches: edge ({edge.src}, {edge.dst}) has no "
                f"{prop!r} property")
        w = (int(edge.properties.get(weight, default_weight))
             if weight is not None else default_weight)
        stamped.append((int(ts), edge.src, edge.dst, w))
    stamped.sort()
    if not stamped:
        return [StreamBatch() for _ in range(num_batches)]
    per = max(1, -(-len(stamped) // num_batches))  # ceil division
    batches = []
    for start in range(0, len(stamped), per):
        chunk = stamped[start:start + per]
        batches.append(StreamBatch(
            appends=tuple((src, dst, w) for _ts, src, dst, w in chunk)))
    while len(batches) < num_batches:
        batches.append(StreamBatch())
    return batches


def sliding_batches(base: Sequence[StreamBatch],
                    width: int) -> List[StreamBatch]:
    """Sliding-window view of an append-only source.

    Batch ``i`` of the result appends what base batch ``i`` appends and
    retracts everything base batch ``i - width`` appended — expressing
    window expiry as explicit retractions, exactly how the paper's
    sliding collections (:func:`repro.core.windows.sliding_windows`)
    become difference sets. The base source must be append-only: expiry
    of an edge the window already retracted is ill-defined.
    """
    if width <= 0:
        raise ConfigError("sliding_batches: width must be positive")
    base = list(base)
    for index, batch in enumerate(base):
        if batch.retracts:
            raise ConfigError(
                f"sliding_batches: base batch {index} has retractions; "
                f"the base source must be append-only")
    out = []
    for index, batch in enumerate(base):
        expired = (base[index - width].appends if index >= width else ())
        out.append(StreamBatch(appends=batch.appends, retracts=expired))
    return out


def cumulative_batches(base: Iterable[StreamBatch]) -> List[StreamBatch]:
    """Cumulative-window view of a source: nothing ever expires.

    The identity on the batch list, named for symmetry with
    :func:`repro.core.windows.cumulative_windows`.
    """
    return list(base)


def batches_from_collection(collection) -> List[StreamBatch]:
    """The views of a materialized collection, as one batch per view.

    View ``i``'s difference set becomes batch ``i``: positive
    multiplicities expand into appends, negative into retracts. Driving
    these batches through the stream engine must reproduce, epoch by
    epoch, what the batch executor computes view by view — the stream
    invariant the fuzzer checks.
    """
    batches = []
    for diff in collection.diffs:
        appends: List[EdgeTriple] = []
        retracts: List[EdgeTriple] = []
        for (_eid, src, dst, w), mult in sorted(diff.items()):
            if mult > 0:
                appends.extend([(src, dst, w)] * mult)
            elif mult < 0:
                retracts.extend([(src, dst, w)] * (-mult))
        batches.append(StreamBatch(appends=tuple(appends),
                                   retracts=tuple(retracts)))
    return batches
