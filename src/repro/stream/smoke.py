"""End-to-end smoke test for streaming (``python -m repro.stream.smoke``).

Drives a 60-epoch seeded churn stream through the engine and asserts the
contract docs/streaming.md promises, on both execution backends at the
same worker count:

1. **Per-epoch oracle equality** — after every ingested batch, each
   query's on-demand snapshot equals the plain-Python reference on the
   accumulated edge multiset (streaming is never approximate).
2. **Backend byte-identity** — per-epoch output deltas and deterministic
   meter figures (work, parallel time; never wall-clock latency) are
   identical between the inline and process backends.
3. **Incremental work** — the stream's total metered work is well under
   what recomputing every epoch from scratch costs: per-epoch cost
   scales with the batch, not the graph.
4. **Bounded memory** — with compaction on, the capture trace's distinct
   times stay bounded by the compaction window instead of growing with
   the epoch count.
5. **Kill / resume** — a journaled stream killed mid-way and resumed
   produces byte-identical per-epoch results and meter rows versus the
   run that never died.

Exits 0 on success, 1 with a diagnostic on any failed check. Used by
``make stream-smoke`` and the CI ``stream-smoke`` job.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.serve.session import ResidentDataflow, render_output
from repro.stream import StreamEngine, churn_batches, triples_to_input
from repro.verify.oracles import describe_map_mismatch, output_map, \
    resolve_algorithms

EPOCHS = 60
WORKERS = 2
SEED = 11
KILL_AT = 27
COMPACT_EVERY = 8
KEEP_EPOCHS = 4
QUERIES = (("wcc", {}), ("degrees", {}))


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def batches():
    # A graph much larger than the per-epoch churn: incrementality only
    # shows when the batch is small relative to the accumulated state.
    return churn_batches(SEED, EPOCHS, num_nodes=80, churn=3,
                         base_edges=150)


def accumulated_triples(engine: StreamEngine):
    return [triple for triple, mult in sorted(engine.edges.items())
            for _ in range(mult)]


def run_stream(backend: str, journal=None, stop_after=None,
               against_oracle=False):
    """Stream the churn batches; returns (per-epoch rows, scratch work).

    Rows carry everything deterministic: the rendered snapshot and
    output delta per query plus the meter's work figures. With
    ``against_oracle`` every epoch is also cross-checked against the
    plain references and a from-scratch dataflow's work is accumulated
    for the incrementality check.
    """
    specs = {spec.name: spec for spec in resolve_algorithms(
        [name for name, _params in QUERIES])}
    engine = StreamEngine(workers=WORKERS, backend=backend,
                          compact_every=COMPACT_EVERY,
                          keep_epochs=KEEP_EPOCHS)
    rows = []
    scratch_work = 0
    try:
        signatures = {}
        for name, params in QUERIES:
            signatures[engine.register(name, params)] = name
        if journal is not None:
            engine.attach_journal(journal)
        for batch in batches()[:stop_after]:
            payload = engine.ingest(batch)
            row = {"epoch": payload["epoch"]}
            for signature, name in sorted(signatures.items()):
                result = payload["results"][signature]
                snapshot = engine.snapshot(signature)
                row[name] = {
                    "snapshot": render_output(snapshot),
                    "delta": result["output_delta"],
                    "work": result["work"],
                    "parallel_time": result["parallel_time"],
                }
                if against_oracle:
                    spec = specs[name]
                    want = spec.expected(accumulated_triples(engine), {})
                    detail = describe_map_mismatch(output_map(snapshot),
                                                   want)
                    check(detail is None,
                          f"epoch {engine.epoch} {name} snapshot "
                          f"diverged from the reference: {detail}")
                query = engine.queries[signature]
                capture = query.resident.capture
                check(len(capture.trace) <= COMPACT_EVERY + KEEP_EPOCHS + 1,
                      f"epoch {engine.epoch} {name}: capture holds "
                      f"{len(capture.trace)} distinct times; compaction "
                      f"is not bounding memory")
            if against_oracle:
                scratch = ResidentDataflow(
                    specs["wcc"].computation({}), workers=WORKERS)
                try:
                    _out, spent = scratch.advance(triples_to_input(
                        engine.edges, directed=False))
                    scratch_work += spent.total_work
                finally:
                    scratch.poison()
            rows.append(row)
    finally:
        engine.close()
    return rows, scratch_work


def main() -> int:
    try:
        inline_rows, scratch_work = run_stream("inline",
                                               against_oracle=True)
        check(len(inline_rows) == EPOCHS,
              f"expected {EPOCHS} epochs, streamed {len(inline_rows)}")
        streamed_work = sum(row["wcc"]["work"] for row in inline_rows)
        check(streamed_work * 2 < scratch_work,
              f"streaming wcc cost {streamed_work} work vs "
              f"{scratch_work} from scratch; per-epoch cost is not "
              f"scaling with the batch")

        process_rows, _ = run_stream("process")
        check(process_rows == inline_rows,
              "inline and process backends diverged: first differing "
              "epoch " + str(next(
                  (i + 1 for i, (a, b) in
                   enumerate(zip(inline_rows, process_rows)) if a != b),
                  len(inline_rows))))

        with tempfile.TemporaryDirectory(prefix="stream-smoke-") as tmp:
            journal = Path(tmp) / "stream.ckpt"
            interrupted, _ = run_stream("inline", journal=journal,
                                        stop_after=KILL_AT)
            check(len(interrupted) == KILL_AT,
                  f"interrupted run streamed {len(interrupted)} epochs, "
                  f"expected {KILL_AT}")
            engine = StreamEngine.resume(journal)
            resumed_rows = []
            try:
                check(engine.epoch == KILL_AT,
                      f"resume replayed to epoch {engine.epoch}, "
                      f"expected {KILL_AT}")
                signatures = {sig: engine.queries[sig].name
                              for sig in engine.queries}
                for batch in batches()[KILL_AT:]:
                    payload = engine.ingest(batch)
                    row = {"epoch": payload["epoch"]}
                    for signature, name in sorted(signatures.items()):
                        result = payload["results"][signature]
                        row[name] = {
                            "snapshot": render_output(
                                engine.snapshot(signature)),
                            "delta": result["output_delta"],
                            "work": result["work"],
                            "parallel_time": result["parallel_time"],
                        }
                    resumed_rows.append(row)
            finally:
                engine.close()
            check(resumed_rows == inline_rows[KILL_AT:],
                  f"killed-and-resumed stream diverged from the "
                  f"uninterrupted run after epoch {KILL_AT}")
    except SmokeFailure as failure:
        print("stream-smoke FAILED:", failure, file=sys.stderr)
        return 1
    print(f"stream-smoke OK: {EPOCHS} churn epochs, per-epoch oracle "
          f"equality, inline/process byte-identity at {WORKERS} workers, "
          f"incremental work ({streamed_work} streamed vs {scratch_work} "
          f"from scratch), bounded capture traces, kill at epoch "
          f"{KILL_AT} + resume byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
