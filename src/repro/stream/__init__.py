"""Streaming edge ingestion with continuously maintained queries.

The streaming counterpart of the batch executor: an edge-stream source
produces :class:`StreamBatch` append/retract steps against a live
property graph, and a :class:`StreamEngine` keeps one resident
differential dataflow per registered algorithm, absorbing each batch as
one epoch and emitting per-epoch result deltas. See
``docs/streaming.md`` for semantics and guarantees.
"""

from repro.stream.engine import (
    ContinuousQuery,
    EpochResult,
    StreamEngine,
    triples_to_input,
)
from repro.stream.source import (
    StreamBatch,
    batches_from_collection,
    churn_batches,
    cumulative_batches,
    replay_batches,
    sliding_batches,
)

__all__ = [
    "ContinuousQuery",
    "EpochResult",
    "StreamBatch",
    "StreamEngine",
    "batches_from_collection",
    "churn_batches",
    "cumulative_batches",
    "replay_batches",
    "sliding_batches",
    "triples_to_input",
]
