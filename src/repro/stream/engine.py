"""The streaming engine: continuously maintained queries over a live graph.

Graphsurge's batch path materializes a view collection up front and
executes its difference sets as dataflow epochs. Streaming turns that
inside out: the difference sets *arrive over time* as
:class:`~repro.stream.source.StreamBatch` appends/retracts against a
live property graph, and every registered query keeps one resident
differential dataflow (:class:`repro.serve.session.ResidentDataflow`)
that absorbs each batch as one epoch. Results are reported as per-epoch
output deltas; full snapshots are computed on demand from the capture
trace. Because each epoch's cost is driven by the batch's difference —
not the accumulated graph — maintaining a query over a long stream does
the same total work as the batch executor doing one collection whose
views are the stream's prefixes.

Memory stays bounded through frontier-driven trace compaction
(:meth:`repro.differential.dataflow.Dataflow.compact`): every
``compact_every`` epochs, history older than ``keep_epochs`` epochs
folds into epoch-0 representatives, on both backends.

Durability uses the PR 1 journal format: the engine appends each
ingested batch to a checkpoint journal; :meth:`StreamEngine.resume`
replays the journal batch by batch — the same epochs, the same
deterministic meter — so a killed and resumed stream is byte-identical
to one that never died.
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List, Optional

from repro.core.resilience import (
    CheckpointWriter,
    FaultPlan,
    load_checkpoint,
)
from repro.differential.multiset import Diff
from repro.errors import CheckpointError, RequestError, StreamError
from repro.graph.edge_stream import EdgeStream
from repro.observe.stream_metrics import EpochMetric, StreamMeter
from repro.serve.session import (
    ResidentDataflow,
    build_request_computation,
    computation_signature,
    render_output,
)
from repro.stream.source import EdgeTriple, StreamBatch


def triples_to_input(delta: Dict[EdgeTriple, int],
                     directed: bool = True) -> Diff:
    """Convert an edge-triple difference to dataflow input records."""
    diff: Diff = {}
    for (src, dst, w), mult in delta.items():
        rec = (src, (dst, w))
        diff[rec] = diff.get(rec, 0) + mult
        if not directed:
            rev = (dst, (src, w))
            diff[rev] = diff.get(rev, 0) + mult
    return {rec: mult for rec, mult in diff.items() if mult}


class ContinuousQuery:
    """One registered algorithm kept continuously maintained."""

    def __init__(self, name: str, params: Dict[str, Any],
                 workers: int, backend: str,
                 fault_plan: Optional[FaultPlan] = None):
        self.name = str(name).lower()
        self.params = dict(params or {})
        self.signature = computation_signature(name, self.params)
        self.computation = build_request_computation(name, self.params)
        self.resident = ResidentDataflow(
            self.computation, workers=workers,
            fault_plan=fault_plan, backend=backend)


class EpochResult:
    """What one query produced for one ingested batch."""

    def __init__(self, epoch: int, query: str, output_delta: Diff,
                 work: int, parallel_time: int, latency_s: float):
        self.epoch = epoch
        self.query = query
        self.output_delta = output_delta
        self.work = work
        self.parallel_time = parallel_time
        self.latency_s = latency_s

    def to_payload(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "query": self.query,
            "output_delta": render_output(self.output_delta),
            "work": self.work,
            "parallel_time": self.parallel_time,
            "latency_s": round(self.latency_s, 6),
        }


class StreamEngine:
    """Streaming ingestion against a set of continuous queries.

    ``graph`` seeds the accumulated edge multiset (epoch 0 of every
    resident dataflow); each :meth:`ingest` absorbs one batch as the
    next epoch across all registered queries, atomically — an invalid
    batch (:class:`~repro.errors.StreamError`) changes nothing.
    """

    JOURNAL_KIND = "stream-session"

    def __init__(self, graph=None, workers: int = 1,
                 backend: str = "inline",
                 weight_property: Optional[str] = None,
                 compact_every: int = 8, keep_epochs: int = 4,
                 fault_plan: Optional[FaultPlan] = None):
        self.workers = workers
        self.backend = backend
        self.weight_property = weight_property
        self.compact_every = int(compact_every)
        self.keep_epochs = max(1, int(keep_epochs))
        self.fault_plan = fault_plan
        self.meter = StreamMeter()
        #: Accumulated (src, dst, weight) multiset — the live edge set.
        self.edges: Dict[EdgeTriple, int] = {}
        self.epoch = 0
        self.queries: Dict[str, ContinuousQuery] = {}
        self._writer: Optional[CheckpointWriter] = None
        self._journal_header: Optional[dict] = None
        self._batches_journaled = 0
        if graph is not None:
            stream = EdgeStream.from_graph(graph, weight=weight_property)
            for _eid, src, dst, w in stream.edges:
                triple = (src, dst, w)
                self.edges[triple] = self.edges.get(triple, 0) + 1

    # -- registration ---------------------------------------------------------

    def register(self, name: str,
                 params: Optional[Dict[str, Any]] = None) -> str:
        """Register a continuous query; returns its signature.

        The resident dataflow is seeded immediately with the current
        accumulated edge multiset as its epoch 0, so a query registered
        mid-stream starts from the live graph, not from empty.

        Registration gates on the static analyzer's stream-maintainability
        pass (``GS-M4xx`` — retraction and compaction hazards; plus the
        shard-safety pass on the process backend): a plan with
        ERROR-severity findings raises
        :class:`repro.errors.AnalysisError` *before* any dataflow is
        seeded, so a continuous query that would leak memory or corrupt
        retractions never starts serving.
        """
        from repro.analyze import analyze_computation
        from repro.errors import AnalysisError

        query = ContinuousQuery(name, params or {}, self.workers,
                                self.backend, self.fault_plan)
        if query.signature in self.queries:
            raise RequestError(
                f"query {query.signature} is already registered")
        report = analyze_computation(
            query.computation, workers=self.workers, stream=True,
            concurrency=(self.backend == "process"))
        if not report.ok:
            raise AnalysisError(report)
        query.resident.advance(
            triples_to_input(self.edges, query.computation.directed))
        self.queries[query.signature] = query
        return query.signature

    # -- ingestion ------------------------------------------------------------

    def _batch_delta(self, batch: StreamBatch) -> Dict[EdgeTriple, int]:
        """Validate a batch against the live edge multiset atomically."""
        delta: Dict[EdgeTriple, int] = {}
        for triple in batch.appends:
            delta[triple] = delta.get(triple, 0) + 1
        for triple in batch.retracts:
            delta[triple] = delta.get(triple, 0) - 1
        for triple, change in delta.items():
            if self.edges.get(triple, 0) + change < 0:
                raise StreamError(
                    f"batch retracts edge {triple} beyond its "
                    f"multiplicity {self.edges.get(triple, 0)} at epoch "
                    f"{self.epoch}")
        return {t: m for t, m in delta.items() if m}

    def ingest(self, batch: StreamBatch) -> Dict[str, Any]:
        """Absorb one batch as the next epoch across every query."""
        if not self.queries:
            raise RequestError("no continuous queries registered")
        delta = self._batch_delta(batch)
        for triple, change in delta.items():
            count = self.edges.get(triple, 0) + change
            if count:
                self.edges[triple] = count
            else:
                self.edges.pop(triple, None)
        self.epoch += 1
        results: List[EpochResult] = []
        for signature in sorted(self.queries):
            query = self.queries[signature]
            results.append(self._advance_query(query, delta, batch.size))
        if self._writer is not None:
            self._writer.append_view(dict(
                batch.to_record(), index=self._batches_journaled,
                view_name=f"epoch-{self.epoch}"))
            self._batches_journaled += 1
        self._maybe_compact()
        return {
            "epoch": self.epoch,
            "batch_size": batch.size,
            "results": {res.query: res.to_payload() for res in results},
        }

    def _advance_query(self, query: ContinuousQuery,
                       delta: Dict[EdgeTriple, int],
                       batch_size: int) -> EpochResult:
        resident = query.resident
        directed = query.computation.directed
        started = _time.perf_counter()
        if resident.dataflow is None:
            # A prior epoch poisoned this resident (fault injection,
            # budget breach). Re-seed with the full accumulated state —
            # the rebuild discipline advance() already implements.
            _output, spent = resident.advance(
                triples_to_input(self.edges, directed))
            output_delta = resident.capture.diff_at(
                (resident.dataflow.epoch,))
        else:
            _out, output_delta, spent = resident.advance_by(
                triples_to_input(delta, directed))
        latency = _time.perf_counter() - started
        result = EpochResult(self.epoch, query.signature,
                             output_delta, spent.total_work,
                             spent.parallel_time, latency)
        self.meter.record(EpochMetric(
            epoch=self.epoch, query=query.signature,
            batch_size=batch_size,
            delta_records=sum(abs(m) for m in delta.values()),
            output_delta_size=len(output_delta),
            work=spent.total_work, parallel_time=spent.parallel_time,
            latency_s=latency))
        return result

    def _maybe_compact(self) -> None:
        if self.compact_every <= 0 or self.epoch % self.compact_every:
            return
        for query in self.queries.values():
            dataflow = query.resident.dataflow
            if dataflow is not None:
                dataflow.compact(dataflow.epoch - self.keep_epochs)

    # -- reads ----------------------------------------------------------------

    def snapshot(self, signature: str) -> Diff:
        """The full accumulated output of one query, on demand."""
        query = self.queries.get(signature)
        if query is None:
            raise RequestError(
                f"unknown stream query {signature!r}; registered: "
                f"{sorted(self.queries)}")
        resident = query.resident
        if resident.dataflow is None:
            output, _spent = resident.advance(
                triples_to_input(self.edges, query.computation.directed))
            return output
        return resident.capture.value_at_epoch(resident.dataflow.epoch)

    def describe(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "live_edges": sum(self.edges.values()),
            "queries": sorted(self.queries),
            "workers": self.workers,
            "backend": self.backend,
            "meter": self.meter.summary(),
        }

    def resident_memory(self) -> Dict[str, Any]:
        """Stored trace records per query (the bounded-memory figure)."""
        out = {}
        for signature, query in sorted(self.queries.items()):
            counts = query.resident.record_counts()
            capture = query.resident.capture
            out[signature] = {
                "records": sum(counts.values()),
                "capture_times": (len(capture.trace)
                                  if capture is not None else 0),
            }
        return out

    # -- durability -----------------------------------------------------------

    def attach_journal(self, path) -> None:
        """Start journaling ingested batches to ``path`` (fresh file)."""
        header = self._header()
        self._writer = CheckpointWriter.fresh(path, header)
        self._journal_header = header
        self._batches_journaled = 0

    def _header(self) -> dict:
        return {
            "kind": self.JOURNAL_KIND,
            "queries": [[query.name, query.params]
                        for _sig, query in sorted(self.queries.items())],
            "workers": self.workers,
            "backend": self.backend,
            "weight_property": self.weight_property,
            "compact_every": self.compact_every,
            "keep_epochs": self.keep_epochs,
        }

    @classmethod
    def resume(cls, path, graph=None,
               backend: Optional[str] = None) -> "StreamEngine":
        """Rebuild a streamed session from its journal, then continue it.

        Registers the header's queries against ``graph`` (the same base
        graph the original engine started from), replays every journaled
        batch as one epoch each — deterministic, so outputs and meter
        figures are byte-identical to the original run's — and reopens
        the journal for appending. A torn final line (killed mid-write)
        is dropped, exactly like run checkpoints. ``backend`` overrides
        the journaled backend (the cross-backend equivalence the fuzzer
        checks makes this safe).
        """
        state = load_checkpoint(path)
        if state is None:
            raise CheckpointError(f"no stream journal at {path}")
        if state.header.get("kind") != cls.JOURNAL_KIND:
            raise CheckpointError(
                f"checkpoint {path} is not a stream journal "
                f"(kind={state.header.get('kind')!r})")
        engine = cls(
            graph,
            workers=int(state.header.get("workers", 1)),
            backend=(backend if backend is not None
                     else state.header.get("backend", "inline")),
            weight_property=state.header.get("weight_property"),
            compact_every=int(state.header.get("compact_every", 8)),
            keep_epochs=int(state.header.get("keep_epochs", 4)))
        for name, params in state.header.get("queries", ()):
            engine.register(name, params)
        for record in state.views:
            engine.ingest(StreamBatch.from_record(record))
        engine._writer = CheckpointWriter.resume(path, state)
        engine._journal_header = state.header
        engine._batches_journaled = len(state.views)
        return engine

    def close(self) -> None:
        """Release every resident dataflow and the journal. Idempotent."""
        for query in self.queries.values():
            query.resident.poison()
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
