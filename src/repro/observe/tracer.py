"""The trace sink: a structured activity stream for the cost model.

A :class:`TraceSink` mirrors the :class:`repro.timely.meter.WorkMeter`'s
superstep frames and adds the two dimensions the meter throws away:
*which operator* did the work and *at which timestamp*. Every
``meter.record(key, units)`` call lands in the current superstep frame as
a span keyed by ``(operator name, timestamp, worker shard)``; frames are
opened and closed by the same ``begin_step``/``end_step`` calls that
drive the meter, so the sink's per-frame worker totals are — by
construction — the very dicts whose maxima the meter sums into
``parallel_time``.

The sink is attached to a dataflow (``Dataflow(tracer=...)``); when it is
``None`` (the default) every hook is a single ``is None`` test, and the
metered counters are byte-identical with tracing on or off: the sink only
observes, it never feeds back into the meter.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: A timestamp as used by the engine: ``(epoch,)`` at the root, one extra
#: coordinate per iterate-scope nesting level.
Time = Tuple[int, ...]

#: Span key: (operator name, timestamp, worker shard).
SpanKey = Tuple[str, Time, int]

#: Operator label used when work is metered outside any operator context
#: (should not happen with the standard hooks; kept as a safety net so a
#: missing hook shows up in reports instead of crashing them).
UNTRACKED = "(untracked)"


@dataclass(frozen=True)
class SpanEvent:
    """One aggregated span: ``units`` of work by ``operator`` at ``time``
    on worker ``worker``, inside superstep ``step_index``."""

    step_index: int
    kind: str  # "step" (parallel superstep) or "serial"
    operator: str
    scope_depth: int
    time: Optional[Time]
    worker: int
    units: int

    @property
    def epoch(self) -> Optional[int]:
        return self.time[0] if self.time else None


@dataclass
class StepRecord:
    """One completed superstep frame (or one serial stretch between
    frames).

    ``worker_units`` are the per-worker totals — for a ``"step"`` record
    exactly the frame dict whose ``max`` the meter added to
    ``parallel_time``. ``op_units`` refines it by (operator, timestamp,
    worker); summing ``op_units`` over operators and times reproduces
    ``worker_units``.
    """

    index: int
    kind: str  # "step" | "serial"
    depth: int
    worker_units: Dict[int, int] = field(default_factory=dict)
    op_units: Dict[SpanKey, int] = field(default_factory=dict)
    scope_depths: Dict[str, int] = field(default_factory=dict)

    @property
    def units(self) -> int:
        return sum(self.worker_units.values())

    @property
    def critical_units(self) -> int:
        """This record's contribution to simulated ``parallel_time``.

        A parallel superstep costs the *maximum* per-worker work (the
        workers synchronize at its end); serial work — metered outside any
        frame — costs its full sum, exactly as the meter charges it.
        """
        if not self.worker_units:
            return 0
        if self.kind == "serial":
            return self.units
        return max(self.worker_units.values())

    @property
    def critical_worker(self) -> Optional[int]:
        """The worker whose work determines this superstep's duration
        (lowest id on ties; ``None`` for serial records — every worker
        waits on serial work)."""
        if self.kind == "serial" or not self.worker_units:
            return None
        peak = max(self.worker_units.values())
        return min(w for w, u in self.worker_units.items() if u == peak)

    def spans(self) -> Iterator[SpanEvent]:
        for (operator, time, worker), units in self.op_units.items():
            yield SpanEvent(
                step_index=self.index,
                kind=self.kind,
                operator=operator,
                scope_depth=self.scope_depths.get(operator, 1),
                time=time,
                worker=worker,
                units=units,
            )


class TraceSink:
    """Records the engine's activity stream during a traced run.

    Driven by three hook families:

    * ``enter_operator``/``exit_operator`` — around every operator apply
      (``flush`` from a scope driver, ``on_delta`` from an upstream
      ``send``); maintains the attribution context.
    * ``begin_step``/``end_step`` — called by the meter's superstep
      methods; mirrors the frame stack.
    * ``record`` — called by ``WorkMeter.record`` with the already-sharded
      worker and the final unit count (after any fault-plan inflation), so
      sink totals agree with meter totals to the unit.

    ``mark()`` returns a position usable to analyze a half-open window of
    the stream (the executor brackets each view's ``step`` with marks).
    """

    def __init__(self, workers: int = 1):
        self.workers = workers
        self.steps: List[StepRecord] = []
        #: Total units observed (agrees with the meter's ``total_work``
        #: delta over the traced interval).
        self.total_units = 0
        # Operator-context stack: (name, scope_depth, time).
        self._ops: List[Tuple[str, int, Optional[Time]]] = []
        # Mirror of the meter's superstep frame stack.
        self._frames: List[StepRecord] = []
        # Open serial stretch (work metered outside any frame).
        self._serial: Optional[StepRecord] = None

    # -- operator context -----------------------------------------------------

    def enter_operator(self, name: str, scope_depth: int,
                       time: Optional[Time]) -> None:
        self._ops.append((name, scope_depth, time))

    def exit_operator(self) -> None:
        self._ops.pop()

    # -- superstep frames (driven by the meter) -------------------------------

    def begin_step(self) -> None:
        self._flush_serial()
        self._frames.append(StepRecord(index=-1, kind="step",
                                       depth=len(self._frames) + 1))

    def end_step(self) -> None:
        if not self._frames:
            return
        frame = self._frames.pop()
        if frame.worker_units:
            frame.index = len(self.steps)
            self.steps.append(frame)

    # -- spans ------------------------------------------------------------------

    def record(self, worker: int, units: int, key: Any = None) -> None:
        """Attribute ``units`` on ``worker`` to the current operator."""
        if self._ops:
            name, depth, time = self._ops[-1]
        else:
            name, depth, time = UNTRACKED, 1, None
        if self._frames:
            target = self._frames[-1]
        else:
            if self._serial is None:
                self._serial = StepRecord(index=-1, kind="serial", depth=0)
            target = self._serial
        target.worker_units[worker] = \
            target.worker_units.get(worker, 0) + units
        span = (name, time, worker)
        target.op_units[span] = target.op_units.get(span, 0) + units
        target.scope_depths.setdefault(name, depth)
        self.total_units += units

    # -- windows -----------------------------------------------------------------

    def mark(self) -> int:
        """Close any open serial stretch; return the stream position."""
        self._flush_serial()
        return len(self.steps)

    def window(self, start: int, end: Optional[int] = None
               ) -> List[StepRecord]:
        """The completed records in ``[start, end)`` (marks from
        :meth:`mark`)."""
        return self.steps[start:end if end is not None else len(self.steps)]

    def spans(self, start: int = 0, end: Optional[int] = None
              ) -> Iterator[SpanEvent]:
        for step in self.window(start, end):
            yield from step.spans()

    # -- internals ----------------------------------------------------------------

    def _flush_serial(self) -> None:
        serial = self._serial
        if serial is not None and serial.worker_units:
            serial.index = len(self.steps)
            self.steps.append(serial)
        self._serial = None


@contextmanager
def attached(dataflow, sink: Optional[TraceSink]):
    """Temporarily attach ``sink`` to a live dataflow (per-request tracing).

    The serving layer keeps dataflows resident across requests; a request
    that asks for a profile attaches a fresh sink around its ``step`` and
    detaches it afterwards, so other requests on the same session pay the
    zero-overhead ``is None`` path. With ``sink=None`` this is a no-op.
    """
    if sink is None:
        yield
        return
    previous_dataflow = dataflow.tracer
    previous_meter = dataflow.meter.tracer
    dataflow.tracer = sink
    dataflow.meter.tracer = sink
    try:
        yield
    finally:
        dataflow.tracer = previous_dataflow
        dataflow.meter.tracer = previous_meter
