"""Structured tracing and critical-path profiling for the engine.

``repro.observe`` answers *where* differential computation spends its work
across a view collection. The engine's cost model already reports
end-of-run aggregates (``total_work``, ``parallel_time``); this package
records the activity stream behind those numbers — one span per
(operator, scope, timestamp, worker shard) — and computes the critical
path that actually determines a W-worker cluster's simulated elapsed
time.

Layers:

* :class:`TraceSink` — zero-overhead-when-disabled recorder hooked into
  ``Dataflow.step``/``iterate`` scope passes, ``WorkMeter`` superstep
  frames, and every operator apply.
* :mod:`repro.observe.critical_path` — stitches per-superstep max-work
  workers into a per-view critical path whose length equals the meter's
  ``parallel_time`` delta for that view *exactly*.
* :mod:`repro.observe.export` — Chrome trace-event JSON
  (``chrome://tracing``-loadable) and a text flamegraph-style rollup.
* :mod:`repro.observe.profile` — per-view/collection profile summaries
  and the report object returned by ``Graphsurge.profile``.

See ``docs/observability.md`` for the trace schema and semantics.
"""

from repro.observe.critical_path import (
    CriticalPathReport,
    PathContributor,
    critical_path,
)
from repro.observe.export import (
    chrome_trace,
    flame_rollup,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.profile import (
    CollectionProfile,
    ProfileReport,
    ViewProfile,
)
from repro.observe.stream_metrics import EpochMetric, StreamMeter
from repro.observe.tracer import (
    UNTRACKED,
    SpanEvent,
    StepRecord,
    TraceSink,
    attached,
)

__all__ = [
    "CollectionProfile",
    "UNTRACKED",
    "attached",
    "CriticalPathReport",
    "EpochMetric",
    "PathContributor",
    "StreamMeter",
    "ProfileReport",
    "SpanEvent",
    "StepRecord",
    "TraceSink",
    "ViewProfile",
    "chrome_trace",
    "critical_path",
    "flame_rollup",
    "validate_chrome_trace",
    "write_chrome_trace",
]
