"""Per-epoch metering for the streaming engine.

The batch profiler (:mod:`repro.observe.profile`) answers "where did this
collection's work go"; a stream needs the time axis instead: per epoch,
how big was the batch, how much model work did absorbing it cost, how
large was the emitted result delta, and how long did the step take on
the wall clock. The work figures come off the deterministic
:class:`~repro.timely.meter.WorkMeter` and are byte-reproducible across
runs and backends; wall-clock latency is real time and is reported but
never part of any equality invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List


@dataclass(frozen=True)
class EpochMetric:
    """Metering for one (epoch, query) ingestion step."""

    epoch: int
    query: str
    batch_size: int
    delta_records: int
    output_delta_size: int
    work: int
    parallel_time: int
    latency_s: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "query": self.query,
            "batch_size": self.batch_size,
            "delta_records": self.delta_records,
            "output_delta_size": self.output_delta_size,
            "work": self.work,
            "parallel_time": self.parallel_time,
            "latency_s": round(self.latency_s, 6),
        }


class StreamMeter:
    """Accumulates :class:`EpochMetric` rows for one stream session."""

    def __init__(self) -> None:
        self.epochs: List[EpochMetric] = []

    def record(self, metric: EpochMetric) -> None:
        self.epochs.append(metric)

    def total_work(self) -> int:
        return sum(metric.work for metric in self.epochs)

    def per_query_work(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for metric in self.epochs:
            out[metric.query] = out.get(metric.query, 0) + metric.work
        return out

    def summary(self) -> Dict[str, Any]:
        """Roll-up the serving layer and CLI report for a stream."""
        if not self.epochs:
            return {"epochs": 0, "total_work": 0, "total_latency_s": 0.0,
                    "max_epoch_work": 0, "queries": {}}
        per_epoch_work: Dict[int, int] = {}
        for metric in self.epochs:
            per_epoch_work[metric.epoch] = (
                per_epoch_work.get(metric.epoch, 0) + metric.work)
        return {
            "epochs": len(per_epoch_work),
            "total_work": self.total_work(),
            "total_latency_s": round(
                sum(m.latency_s for m in self.epochs), 6),
            "max_epoch_work": max(per_epoch_work.values()),
            "queries": self.per_query_work(),
        }

    def rows(self) -> List[Dict[str, Any]]:
        return [metric.to_payload() for metric in self.epochs]
