"""Per-view and per-collection profile summaries.

The executor brackets every view's ``Dataflow.step`` with sink marks and
attaches a :class:`ViewProfile` to the ``ViewRunResult`` (and a
:class:`CollectionProfile` to the ``CollectionRunResult``); the
:class:`ProfileReport` wraps a whole profiled run for rendering and
export — it is what ``Graphsurge.profile`` and the ``profile`` CLI
subcommand return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.observe.critical_path import CriticalPathReport, critical_path
from repro.observe.export import chrome_trace, flame_rollup, \
    write_chrome_trace
from repro.observe.tracer import TraceSink


@dataclass
class ViewProfile:
    """Where one view's simulated time went."""

    view_name: str
    #: The window ``[start, end)`` of sink step records for this view's
    #: final (successful) execution attempt.
    start: int
    end: int
    #: Critical path over that window; ``critical_path.length`` equals the
    #: view's metered ``parallel_time`` exactly.
    critical_path: CriticalPathReport
    #: Total units observed in the window (== the view's metered ``work``).
    work: int

    def render(self, top: int = 5) -> str:
        return self.critical_path.render(top=top)


@dataclass
class CollectionProfile:
    """Per-view profiles of a traced collection run."""

    views: List[ViewProfile] = field(default_factory=list)

    def ranked(self, n: int = 5) -> List[ViewProfile]:
        """The ``n`` views with the longest critical paths, slowest first."""
        return sorted(self.views, key=lambda v: -v.critical_path.length)[:n]

    def slowest(self) -> Optional[ViewProfile]:
        """The single view with the longest critical path (None if empty)."""
        ranked = self.ranked(1)
        return ranked[0] if ranked else None

    def render(self, top: int = 3) -> str:
        lines: List[str] = []
        for view in self.views:
            lines.append(view.render(top=top))
        return "\n".join(lines)


def profile_view(sink: TraceSink, view_name: str, start: int,
                 end: int) -> ViewProfile:
    """Summarize the sink window a view's execution produced."""
    window = sink.window(start, end)
    return ViewProfile(
        view_name=view_name,
        start=start,
        end=end,
        critical_path=critical_path(window, view_name=view_name),
        work=sum(step.units for step in window),
    )


@dataclass
class ProfileReport:
    """A profiled analytics run: the result plus its activity stream.

    ``result`` is the ``ViewRunResult`` / ``CollectionRunResult`` the
    executor returned (with ``profile`` summaries attached); ``sink``
    holds the full span stream for export.
    """

    result: Any
    sink: TraceSink
    target: str = ""

    def view_profiles(self) -> List[ViewProfile]:
        profile = getattr(self.result, "profile", None)
        if isinstance(profile, CollectionProfile):
            return profile.views
        if isinstance(profile, ViewProfile):
            return [profile]
        return []

    def chrome_trace(self) -> dict:
        return chrome_trace(self.sink.steps, workers=self.sink.workers,
                            label=self.target or "graphsurge")

    def write_chrome_trace(self, path) -> None:
        write_chrome_trace(self.sink.steps, path,
                           workers=self.sink.workers,
                           label=self.target or "graphsurge")

    def flame(self, top: Optional[int] = 20) -> str:
        return flame_rollup(self.sink.steps, top=top)

    def render(self, top: int = 3, flame_top: Optional[int] = 10) -> str:
        views = self.view_profiles()
        total = sum(v.critical_path.length for v in views)
        lines = [f"profile of {self.target or 'run'}: {len(views)} view(s), "
                 f"critical path {total} units"]
        for view in views:
            lines.append(view.render(top=top))
        lines.append(self.flame(top=flame_top))
        return "\n".join(lines)
