"""Critical-path analysis over the simulated worker timeline.

The engine's ``parallel_time`` is Σ over supersteps of the maximum
per-worker work in that superstep — the cost model of a W-worker timely
cluster, where every superstep ends in a barrier and the slowest worker
determines when the barrier falls. The *critical path* makes that number
explainable: for every superstep the max-work worker is the critical
worker; stitching those segments (plus any serial, out-of-frame work,
which every worker waits on) across a view's supersteps yields a path
whose total length equals the meter's ``parallel_time`` delta for that
view **exactly**. Attributing each segment's units to the operator and
epoch that performed them answers "why is view k slow" instead of just
"view k cost X".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observe.tracer import StepRecord


@dataclass(frozen=True)
class PathContributor:
    """Units an (operator, epoch) pair placed on the critical path."""

    operator: str
    epoch: Optional[int]
    units: int


@dataclass
class CriticalPathReport:
    """The critical path of one traced window (typically one view)."""

    view_name: str
    #: Total path length; equals the meter's ``parallel_time`` delta over
    #: the same window.
    length: int
    #: Number of parallel supersteps on the path.
    supersteps: int
    #: Units of serial (outside-any-superstep) work on the path.
    serial_units: int
    #: Per-(operator, epoch) units on the path, largest first. Their sum
    #: equals ``length``.
    contributors: List[PathContributor]

    def top(self, n: int = 5) -> List[PathContributor]:
        return self.contributors[:n]

    def render(self, top: int = 5) -> str:
        serial = (f" (+{self.serial_units} serial)"
                  if self.serial_units else "")
        lines = [
            f"critical path for {self.view_name!r}: {self.length} units "
            f"over {self.supersteps} supersteps{serial}"
        ]
        for item in self.top(top):
            share = (100.0 * item.units / self.length) if self.length else 0.0
            where = (f"epoch {item.epoch}" if item.epoch is not None
                     else "untimed")
            lines.append(f"  {item.operator} @ {where}: {item.units} "
                         f"({share:.1f}%)")
        return "\n".join(lines)


def critical_path(steps: Sequence[StepRecord],
                  view_name: str = "view") -> CriticalPathReport:
    """Stitch a window of step records into its critical path.

    For each parallel superstep only the critical worker's spans are on
    the path (lowest worker id on ties — the same value ``max`` picks in
    the meter); serial records contribute all their spans, since serial
    work delays every worker.
    """
    length = 0
    supersteps = 0
    serial_units = 0
    units_by: Dict[Tuple[str, Optional[int]], int] = {}
    for step in steps:
        contribution = step.critical_units
        if not contribution:
            continue
        length += contribution
        if step.kind == "serial":
            serial_units += contribution
            on_path = step.op_units.items()
        else:
            supersteps += 1
            critical = step.critical_worker
            on_path = [(span, units)
                       for span, units in step.op_units.items()
                       if span[2] == critical]
        for (operator, time, _worker), units in on_path:
            slot = (operator, time[0] if time else None)
            units_by[slot] = units_by.get(slot, 0) + units
    contributors = [
        PathContributor(operator=operator, epoch=epoch, units=units)
        for (operator, epoch), units in units_by.items()
    ]
    contributors.sort(key=lambda c: (-c.units, c.operator,
                                     -1 if c.epoch is None else c.epoch))
    return CriticalPathReport(
        view_name=view_name,
        length=length,
        supersteps=supersteps,
        serial_units=serial_units,
        contributors=contributors,
    )
