"""Trace exporters: Chrome trace-event JSON and a text flamegraph rollup.

The Chrome export lays the simulated worker timeline out as one thread
per worker (plus a ``serial`` lane for out-of-superstep work) with one
complete (``"ph": "X"``) event per span, using **1 work unit = 1 µs** of
trace time. Within a superstep every worker's spans start at the step's
barrier; the next step starts after the slowest worker — so the visual
end of the timeline is exactly the simulated ``parallel_time``. Load the
file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.observe.tracer import StepRecord

#: pid used for all emitted events (the run is one simulated process).
_PID = 1


def chrome_trace(steps: Sequence[StepRecord], workers: int = 1,
                 label: str = "graphsurge") -> Dict[str, object]:
    """Render step records as a Chrome trace-event JSON document."""
    events: List[Dict[str, object]] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": f"{label} (simulated, 1 unit = 1us)"}},
    ]
    serial_tid = workers
    for worker in range(workers):
        events.append({"ph": "M", "pid": _PID, "tid": worker,
                       "name": "thread_name",
                       "args": {"name": f"worker {worker}"}})
    events.append({"ph": "M", "pid": _PID, "tid": serial_tid,
                   "name": "thread_name", "args": {"name": "serial"}})

    clock = 0
    for step in steps:
        offsets: Dict[int, int] = {}
        for span in step.spans():
            tid = serial_tid if step.kind == "serial" else span.worker
            start = clock + offsets.get(tid, 0)
            offsets[tid] = offsets.get(tid, 0) + span.units
            events.append({
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": span.operator,
                "cat": step.kind,
                "ts": start,
                "dur": span.units,
                "args": {
                    "time": list(span.time) if span.time else None,
                    "epoch": span.epoch,
                    "worker": span.worker,
                    "units": span.units,
                    "scope_depth": span.scope_depth,
                    "step": step.index,
                },
            })
        clock += step.critical_units
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observe",
            "workers": workers,
            "parallel_time_units": clock,
        },
    }


def write_chrome_trace(steps: Sequence[StepRecord], path, workers: int = 1,
                       label: str = "graphsurge") -> None:
    """Write the Chrome trace atomically (torn traces load as garbage)."""
    from repro.core.persistence import atomic_write_bytes

    payload = chrome_trace(steps, workers=workers, label=label)
    atomic_write_bytes(path, (json.dumps(payload) + "\n").encode("utf-8"))


def validate_chrome_trace(payload: object) -> int:
    """Check a document against the trace-event schema we emit.

    Verifies the JSON-object envelope, the per-event required fields
    (``ph``; ``name``/``ts``/``dur``/``pid``/``tid`` for complete events),
    and non-negative integer timestamps. Returns the number of complete
    (``"X"``) events; raises ``ValueError`` on any violation. Used by the
    tests and the CI profiler smoke step.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace document must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document lacks a traceEvents array")
    complete = 0
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {position} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(f"event {position} has unsupported ph "
                             f"{phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event {position} lacks a name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"event {position} lacks integer {key}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, int) or value < 0:
                    raise ValueError(
                        f"event {position} has invalid {key}: {value!r}")
            complete += 1
    return complete


def flame_rollup(steps: Sequence[StepRecord], width: int = 32,
                 top: Optional[int] = 20) -> str:
    """Flamegraph-style text rollup: units by operator, largest first.

    Operators are indented by scope depth (one ``· `` per iterate-nesting
    level), so loop bodies read as children of their surrounding scope.
    """
    units_by: Dict[str, int] = {}
    depths: Dict[str, int] = {}
    for step in steps:
        for span in step.spans():
            units_by[span.operator] = \
                units_by.get(span.operator, 0) + span.units
            depths.setdefault(span.operator, span.scope_depth)
    total = sum(units_by.values())
    lines = [f"work rollup: {total} units across {len(units_by)} operators"]
    if not total:
        return lines[0]
    ranked = sorted(units_by.items(), key=lambda item: (-item[1], item[0]))
    if top is not None:
        dropped = len(ranked) - top
        ranked = ranked[:top]
    else:
        dropped = 0
    name_width = max(len("· " * (depths[name] - 1) + name)
                     for name, _units in ranked)
    for name, units in ranked:
        share = units / total
        bar = "#" * max(1, int(width * share))
        label = "· " * (depths[name] - 1) + name
        lines.append(f"  {label.ljust(name_width)}  {units:>10}  "
                     f"{share:>6.1%}  {bar}")
    if dropped > 0:
        rest = total - sum(units for _name, units in ranked)
        lines.append(f"  ... {dropped} more operators ({rest} units)")
    return "\n".join(lines)
