"""Online linear cost models for the adaptive splitting optimizer.

The paper uses "two simple linear models" mapping input size to runtime:
one for from-scratch runs (x = |GV_i|) and one for differential runs
(x = |δC_i|). We fit ``y ≈ a·x + b`` by ordinary least squares over all
observations so far; with a single observation the model degrades to a
proportional estimate, which is exactly what step 1-2 of the paper's
protocol provides.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class LinearCostModel:
    """Least-squares ``cost ≈ a·size + b`` fitted online."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.observations: List[Tuple[float, float]] = []

    def observe(self, size: float, cost: float) -> None:
        """Record one (input size, measured cost) sample."""
        self.observations.append((float(size), float(cost)))

    @property
    def num_observations(self) -> int:
        return len(self.observations)

    def coefficients(self) -> Optional[Tuple[float, float]]:
        """Return (a, b), or None when no data has been observed."""
        n = len(self.observations)
        if n == 0:
            return None
        if n == 1:
            size, cost = self.observations[0]
            if size <= 0:
                return (0.0, cost)
            return (cost / size, 0.0)
        sum_x = sum(x for x, _y in self.observations)
        sum_y = sum(y for _x, y in self.observations)
        sum_xx = sum(x * x for x, _y in self.observations)
        sum_xy = sum(x * y for x, y in self.observations)
        denom = n * sum_xx - sum_x * sum_x
        if abs(denom) < 1e-12:
            # All sizes identical; fall back to the mean cost.
            return (0.0, sum_y / n)
        a = (n * sum_xy - sum_x * sum_y) / denom
        b = (sum_y - a * sum_x) / n
        return (a, b)

    def predict(self, size: float) -> Optional[float]:
        """Estimated cost for an input of ``size``; None without data."""
        coeffs = self.coefficients()
        if coeffs is None:
            return None
        a, b = coeffs
        return max(0.0, a * float(size) + b)
