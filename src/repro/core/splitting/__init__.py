"""Adaptive collection splitting (paper §5).

Decides at run time, per batch of views, whether to maintain the analytics
computation differentially or to re-run it from scratch, using two simple
linear cost models fed by observed runtimes.
"""

from repro.core.splitting.model import LinearCostModel
from repro.core.splitting.optimizer import AdaptiveSplitter, SplitDecision

__all__ = ["LinearCostModel", "AdaptiveSplitter", "SplitDecision"]
