"""The adaptive splitting optimizer (paper §5).

Protocol, following the paper:

1. Run ``GV_1`` from scratch and ``GV_2`` differentially, recording
   ``(|GV_1|, st_1)`` and ``(|δC_2|, dt_2)``.
2. For every later view, estimate both options with the linear cost models
   and pick the cheaper. Decisions are made for a *batch* of ``ℓ`` views at
   a time (default 10) because feeding a run of consecutive differential
   views lets DD's indexing amortize.

Running "from scratch" still executes the computation differentially across
its own iterations — it merely abandons the state shared with the previous
views (see §5), i.e. it *splits* the collection at that view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.splitting.model import LinearCostModel

DEFAULT_BATCH = 10


class SplitDecision(enum.Enum):
    DIFFERENTIAL = "differential"
    SCRATCH = "scratch"


@dataclass
class DecisionRecord:
    """Audit record of one per-view decision (for tests and reporting)."""

    view_index: int
    decision: SplitDecision
    est_scratch: float
    est_diff: float


class AdaptiveSplitter:
    """Stateful per-collection splitting policy."""

    def __init__(self, batch_size: int = DEFAULT_BATCH):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.scratch_model = LinearCostModel("scratch")
        self.diff_model = LinearCostModel("differential")
        self.history: List[DecisionRecord] = []
        self._batch_decision: SplitDecision | None = None
        self._batch_remaining = 0

    # -- observations ----------------------------------------------------------

    def observe_scratch(self, view_size: int, cost: float) -> None:
        self.scratch_model.observe(view_size, cost)

    def observe_differential(self, diff_size: int, cost: float) -> None:
        self.diff_model.observe(diff_size, cost)

    # -- decisions ----------------------------------------------------------------

    def decide(self, view_index: int, view_size: int,
               diff_size: int) -> SplitDecision:
        """Choose how to execute view ``view_index``.

        The first view always runs from scratch (there is nothing to share);
        the second always runs differentially — these two prime the models,
        exactly as the paper's steps 1-2 prescribe.
        """
        if view_index == 0:
            decision = SplitDecision.SCRATCH
            self._record(view_index, decision, float("nan"), float("nan"))
            return decision
        if view_index == 1:
            decision = SplitDecision.DIFFERENTIAL
            self._record(view_index, decision, float("nan"), float("nan"))
            return decision
        if self._batch_remaining > 0 and self._batch_decision is not None:
            self._batch_remaining -= 1
            est_s = self.scratch_model.predict(view_size) or 0.0
            est_d = self.diff_model.predict(diff_size) or 0.0
            self._record(view_index, self._batch_decision, est_s, est_d)
            return self._batch_decision
        est_scratch = self.scratch_model.predict(view_size)
        est_diff = self.diff_model.predict(diff_size)
        if est_scratch is None and est_diff is None:
            decision = SplitDecision.DIFFERENTIAL
        elif est_scratch is None:
            decision = SplitDecision.DIFFERENTIAL
        elif est_diff is None:
            decision = SplitDecision.SCRATCH
        else:
            decision = (SplitDecision.SCRATCH
                        if est_scratch < est_diff
                        else SplitDecision.DIFFERENTIAL)
        self._batch_decision = decision
        self._batch_remaining = self.batch_size - 1
        self._record(view_index, decision,
                     est_scratch if est_scratch is not None else float("nan"),
                     est_diff if est_diff is not None else float("nan"))
        return decision

    def _record(self, view_index: int, decision: SplitDecision,
                est_scratch: float, est_diff: float) -> None:
        self.history.append(
            DecisionRecord(view_index, decision, est_scratch, est_diff))

    def split_points(self) -> List[int]:
        """View indices (>0) at which the collection was split."""
        return [rec.view_index for rec in self.history
                if rec.view_index > 0 and rec.decision is SplitDecision.SCRATCH]
