"""Step 1 of view-collection materialization: the Edge Boolean Matrix.

For each edge ``e_i`` of the base graph and each view ``GV_j`` of the
collection, the EBM records whether ``e_i`` satisfies the view's predicate
(paper §3.2, Figure 5a). The computation is embarrassingly parallel over
edges; we shard it over the simulated workers and meter the work.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gvdl.ast import Predicate
from repro.gvdl.predicate import compile_predicate
from repro.graph.property_graph import PropertyGraph
from repro.timely.meter import WorkMeter

EdgeKey = Tuple[int, int, int, int]  # (edge_id, src, dst, weight)


class EdgeBooleanMatrix:
    """An m-edges x k-views boolean matrix plus the edge identities."""

    def __init__(self, edges: Sequence[EdgeKey], view_names: Sequence[str],
                 matrix: np.ndarray):
        if matrix.shape != (len(edges), len(view_names)):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(edges)} edges x {len(view_names)} views")
        self.edges: List[EdgeKey] = list(edges)
        self.view_names: List[str] = list(view_names)
        self.matrix = matrix.astype(bool)

    @property
    def num_edges(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_views(self) -> int:
        return self.matrix.shape[1]

    def reorder(self, order: Sequence[int]) -> "EdgeBooleanMatrix":
        """Return a new EBM with columns permuted by ``order``."""
        order = list(order)
        if sorted(order) != list(range(self.num_views)):
            raise ValueError(f"invalid column order {order}")
        return EdgeBooleanMatrix(
            self.edges,
            [self.view_names[j] for j in order],
            self.matrix[:, order],
        )

    def view_sizes(self) -> List[int]:
        """Number of edges in each view (column sums)."""
        return self.matrix.sum(axis=0).astype(int).tolist()


def build_ebm(graph: PropertyGraph, view_names: Sequence[str],
              predicates: Sequence[Predicate],
              weight_property: Optional[str] = None,
              meter: Optional[WorkMeter] = None,
              workers: int = 1) -> EdgeBooleanMatrix:
    """Evaluate every view predicate on every edge of the base graph.

    Runs as a timely batch dataflow (paper §3.2 step 1: "an embarrassingly
    parallelizable computation ... performed by a TD dataflow"): edges are
    sharded across workers, each worker evaluates every predicate on its
    shard.
    """
    from repro.timely.dataflow import TimelyDataflow

    if len(view_names) != len(predicates):
        raise ValueError("one predicate per view is required")
    evaluators: List[Callable] = [
        compile_predicate(p, graph.edge_schema, graph.node_schema)
        for p in predicates
    ]
    meter = meter or WorkMeter(workers)

    def edge_record(edge):
        if weight_property is not None:
            weight = int(edge.properties.get(weight_property, 1))
        else:
            weight = 1
        return (edge.id, edge.src, edge.dst, weight, edge.properties,
                graph.nodes[edge.src].properties,
                graph.nodes[edge.dst].properties)

    def evaluate_row(record):
        edge_id, src, dst, weight, eprops, sprops, dprops = record
        flags = tuple(evaluate(eprops, sprops, dprops)
                      for evaluate in evaluators)
        return (edge_id, src, dst, weight, flags)

    td = TimelyDataflow(workers=workers, meter=meter)
    stream = td.input("edges")
    results = stream.exchange(lambda rec: rec[1], name="ebm.shard").map(
        evaluate_row, name="ebm.evaluate")
    capture = results.capture("ebm.rows")
    td.run({"edges": [edge_record(edge) for edge in graph.edges]})

    edges: List[EdgeKey] = []
    rows = np.zeros((graph.num_edges, len(predicates)), dtype=bool)
    for row, (edge_id, src, dst, weight, flags) in enumerate(
            sorted(capture.records)):
        edges.append((edge_id, src, dst, weight))
        rows[row] = flags
    return EdgeBooleanMatrix(edges, view_names, rows)


def build_ebm_from_memberships(edges: Sequence[EdgeKey],
                               view_names: Sequence[str],
                               memberships: Sequence[Sequence[bool]]
                               ) -> EdgeBooleanMatrix:
    """Build an EBM directly from precomputed membership rows (tests,
    synthetic workloads)."""
    matrix = np.asarray(memberships, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError("memberships must be a 2-D row-per-edge structure")
    return EdgeBooleanMatrix(edges, view_names, matrix)
