"""Step 3 of view-collection materialization: the edge difference stream.

Given a (possibly reordered) EBM, produce one difference set per view such
that accumulating the first ``t`` difference sets yields exactly view ``t``
(paper §3.2, Figure 5b): an edge contributes +1 where it enters a view, -1
where it leaves, and 0 where consecutive views agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.ebm import EdgeBooleanMatrix, EdgeKey
from repro.timely.meter import WorkMeter

EdgeDiff = Dict[EdgeKey, int]


def compute_diff_stream(ebm: EdgeBooleanMatrix,
                        meter: Optional[WorkMeter] = None) -> List[EdgeDiff]:
    """Materialize the per-view edge difference sets.

    Per-edge independent (embarrassingly parallel): row ``(1,1,0,1)`` yields
    ``+1`` at view 0, ``-1`` at view 2, ``+1`` at view 3.
    """
    meter = meter or WorkMeter()
    matrix = ebm.matrix.astype(np.int8)
    # transitions[:, 0] is the first view itself; afterwards the delta
    # between consecutive columns.
    transitions = np.empty_like(matrix)
    transitions[:, 0] = matrix[:, 0]
    if ebm.num_views > 1:
        transitions[:, 1:] = matrix[:, 1:] - matrix[:, :-1]
    diffs: List[EdgeDiff] = [dict() for _ in range(ebm.num_views)]
    rows, cols = np.nonzero(transitions)
    meter.begin_step()
    for row, col in zip(rows.tolist(), cols.tolist()):
        edge = ebm.edges[row]
        diffs[col][edge] = int(transitions[row, col])
        meter.record(edge[1])
    meter.end_step()
    return diffs


def diff_sizes(diffs: List[EdgeDiff]) -> List[int]:
    """Number of edge differences per view."""
    return [len(d) for d in diffs]


def total_diff_count(diffs: List[EdgeDiff]) -> int:
    """The collection's total difference count (paper Table 4's ``#Diffs``)."""
    return sum(len(d) for d in diffs)


def view_sizes_from_diffs(diffs: List[EdgeDiff]) -> List[int]:
    """Reconstruct |GV_t| for each view by accumulating the differences."""
    sizes: List[int] = []
    current = 0
    for diff in diffs:
        current += sum(diff.values())
        sizes.append(current)
    return sizes


def accumulate_view(diffs: List[EdgeDiff], index: int) -> EdgeDiff:
    """Reconstruct the full edge set of view ``index`` (multiplicity 1)."""
    view: EdgeDiff = {}
    for diff in diffs[:index + 1]:
        for edge, mult in diff.items():
            new = view.get(edge, 0) + mult
            if new == 0:
                view.pop(edge, None)
            elif new == 1:
                view[edge] = 1
            else:
                raise ValueError(
                    f"edge {edge} reached multiplicity {new} while "
                    f"accumulating view {index}; difference stream is corrupt")
    return view
