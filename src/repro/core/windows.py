"""Window-based view-collection builders.

The applications motivating Graphsurge (paper §1, Example 1) analyze
time-windows of a property: cumulative history prefixes, sliding windows,
expanding/shrinking windows. This module turns those recipes into
:class:`ViewCollectionDefinition` objects over any integer property, so
callers don't hand-assemble predicates:

    from repro.core.windows import cumulative_windows
    definition = cumulative_windows("history", "Calls", "year",
                                    bounds=range(2010, 2020))
    collection = definition.materialize(graph)

All builders accept ``target``: ``"edge"`` windows an edge property (e.g.
SO's ``ts``); ``"nodes"`` windows a node property on *both* endpoints
(e.g. the citation graph's ``year``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.view_collection import ViewCollectionDefinition
from repro.errors import ConfigError, GraphsurgeError
from repro.gvdl.ast import And, Comparison, Literal, Predicate, PropRef


def _bound_predicate(prop: str, target: str, lo: Optional[int],
                     hi: Optional[int]) -> Predicate:
    """`lo <= prop < hi` on the edge or on both endpoints."""
    if target not in ("edge", "nodes"):
        raise GraphsurgeError(f"target must be 'edge' or 'nodes', "
                              f"got {target!r}")
    sides = ("edge",) if target == "edge" else ("src", "dst")
    terms: List[Comparison] = []
    for side in sides:
        ref = PropRef(side, prop)
        if lo is not None:
            terms.append(Comparison(ref, ">=", Literal(lo)))
        if hi is not None:
            terms.append(Comparison(ref, "<", Literal(hi)))
    if not terms:
        raise ConfigError("window needs at least one bound")
    if len(terms) == 1:
        return terms[0]
    return And(tuple(terms))


def cumulative_windows(name: str, source: str, prop: str,
                       bounds: Iterable[int],
                       target: str = "edge") -> ViewCollectionDefinition:
    """One view per bound: everything with ``prop < bound``.

    Produces an inclusion chain — each view a superset of its predecessor
    (addition-only differences): the ideal case for differential
    execution.
    """
    views = []
    for bound in bounds:
        views.append((f"lt-{bound}",
                      _bound_predicate(prop, target, None, bound)))
    if not views:
        raise ConfigError("cumulative_windows needs at least one bound")
    return ViewCollectionDefinition(name, source, tuple(views))


def sliding_windows(name: str, source: str, prop: str, start: int,
                    width: int, slide: int, count: int,
                    target: str = "edge") -> ViewCollectionDefinition:
    """``count`` windows ``[start + i·slide, start + i·slide + width)``.

    ``slide < width`` gives overlapping views (partial sharing);
    ``slide == width`` gives tumbling, fully disjoint views (the paper's
    C_no shape); ``slide > width`` leaves gaps.
    """
    if width <= 0 or slide <= 0 or count <= 0:
        raise ConfigError(
            "sliding_windows: width, slide, and count must be positive")
    views = []
    for index in range(count):
        lo = start + index * slide
        hi = lo + width
        views.append((f"win-{lo}-{hi}",
                      _bound_predicate(prop, target, lo, hi)))
    return ViewCollectionDefinition(name, source, tuple(views))


def expand_shrink_slide(name: str, source: str, prop: str,
                        phases: Sequence[Tuple[int, int]],
                        target: str = "edge") -> ViewCollectionDefinition:
    """A collection from an explicit list of ``(lo, hi)`` windows.

    The paper's C_ex-sh-sl (§7.3) is the canonical instance: expand the
    window through additions, shrink it through deletions, then slide it.
    """
    phases = list(phases)
    if not phases:
        raise ConfigError("expand_shrink_slide needs at least one phase")
    views = []
    for lo, hi in phases:
        if hi <= lo:
            raise ConfigError(
                f"expand_shrink_slide: empty window [{lo}, {hi})")
        views.append((f"{lo}-{hi}", _bound_predicate(prop, target, lo, hi)))
    return ViewCollectionDefinition(name, source, tuple(views))


def product_windows(name: str, source: str,
                    outer_prop: str, outer_phases: Sequence[Tuple[int, int]],
                    inner_prop: str, inner_bounds: Sequence[int],
                    target: str = "nodes") -> ViewCollectionDefinition:
    """Cartesian product of window phases with an expanding bound.

    For each outer window, one view per inner bound (``inner_prop <
    bound``), ordered so the inner expansion yields addition-only
    differences and each outer phase change is a natural split point —
    the paper's C_aut shape (§7.3).
    """
    # Materialize both axes: a generator passed as inner_bounds would be
    # exhausted by the first outer phase, silently dropping later phases.
    outer_phases = list(outer_phases)
    inner_bounds = list(inner_bounds)
    views = []
    for lo, hi in outer_phases:
        outer = _bound_predicate(outer_prop, target, lo, hi)
        for bound in inner_bounds:
            inner = _bound_predicate(inner_prop, target, None, bound)
            views.append((
                f"{lo}-{hi}x{inner_prop}-{bound}",
                And((outer, inner)),
            ))
    if not views:
        raise ConfigError("product_windows produced no views")
    return ViewCollectionDefinition(name, source, tuple(views))
