"""The Graphsurge system core (paper §3-§6).

Implements view collections (edge boolean matrix → collection ordering →
edge difference stream), the analytics computation executor with its three
execution policies (diff-only / scratch / adaptive splitting), aggregate
views, and the :class:`Graphsurge` facade tying everything to GVDL and the
stores.
"""

from repro.core.computation import GraphComputation
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.resilience import FaultPlan, RetryPolicy, RunBudget
from repro.core.system import Graphsurge
from repro.core.view_collection import (
    MaterializedCollection,
    ViewCollectionDefinition,
)

__all__ = [
    "GraphComputation",
    "AnalyticsExecutor",
    "ExecutionMode",
    "FaultPlan",
    "Graphsurge",
    "MaterializedCollection",
    "RetryPolicy",
    "RunBudget",
    "ViewCollectionDefinition",
]
