"""The analytics computation API (paper Listing 2).

Users implement :class:`GraphComputation` — the Python analogue of the
``GraphSurgeComputation`` Rust trait. The ``build`` hook receives the
dataflow and the Graphsurge-provided edge stream collection (records are
``(src, (dst, weight))``) and returns a collection of per-vertex results
(records ``(vertex, result_value)``).

The executor feeds the edge stream (or edge *difference* stream, when
running a view collection) into the dataflow; the user program is an
ordinary differential dataflow, so sharing across views happens inside the
engine with no algorithm-specific maintenance code.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.differential.collection import Collection
    from repro.differential.dataflow import Dataflow


class GraphComputation(abc.ABC):
    """Base class for analytics computations.

    Attributes:

    * ``name`` — used in reports.
    * ``directed`` — when False, the executor feeds each edge in both
      directions (symmetric closure), which is what WCC-style computations
      expect.
    """

    name: str = "computation"
    directed: bool = True

    @abc.abstractmethod
    def build(self, dataflow: "Dataflow", edges: "Collection") -> "Collection":
        """Construct the dataflow and return the per-vertex result collection.

        ``edges`` carries ``(src, (dst, weight))`` records. The returned
        collection must carry ``(vertex, result_value)`` records at the root
        scope.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
