"""Persistence for materialized view collections.

The paper's Storage Manager persists views and collections so analytics can
run in later sessions without re-materializing. We serialize a
:class:`MaterializedCollection` to a compact JSON document: edge tuples are
interned into a table and difference sets reference them by index.

Format v2 (current) hardens the v1 format for production use:

* **Atomic writes** — the document is written to a temp file in the target
  directory and moved into place with ``os.replace``, so a crash mid-save
  never leaves a half-written collection behind.
* **Checksummed payload** — the envelope embeds a sha256 of the canonical
  payload JSON; :func:`load_collection` verifies it and rejects silently
  corrupted files.
* **Optional gzip** — pass ``compress=True`` (or a ``.gz`` path) to store
  the envelope gzipped; loading auto-detects the gzip magic.

v1 files (plain document, no checksum) still load. Every malformed-document
shape — missing keys, non-list diffs, out-of-range edge indexes — surfaces
as :class:`StoreError` naming the offending path.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.view_collection import MaterializedCollection
from repro.errors import StoreError

PathLike = Union[str, Path]

_FORMAT_VERSION = 2
_GZIP_MAGIC = b"\x1f\x8b"


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target directory so the replace never
    crosses filesystems; a crash mid-write leaves the old file intact and
    never a half-written new one. Shared by collection persistence, the
    benchmark-baseline writer, and the Chrome-trace exporter.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Text-mode convenience wrapper around :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def _canonical_payload(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _payload_digest(payload: dict) -> str:
    return hashlib.sha256(_canonical_payload(payload)).hexdigest()


def collection_payload(collection: MaterializedCollection) -> dict:
    """The JSON-ready payload dict for a collection.

    Edge tuples are interned into a table and difference sets reference
    them by index. Shared by :func:`save_collection` and the fuzzer's
    repro files (:mod:`repro.verify.replay`), which embed a collection
    inside a larger envelope.
    """
    edge_index: Dict[tuple, int] = {}
    edge_table: List[list] = []
    diffs_encoded = []
    for diff in collection.diffs:
        encoded = []
        for edge, mult in diff.items():
            index = edge_index.get(edge)
            if index is None:
                index = len(edge_table)
                edge_index[edge] = index
                edge_table.append(list(edge))
            encoded.append([index, mult])
        diffs_encoded.append(encoded)
    return {
        "name": collection.name,
        "source": collection.source,
        "view_names": collection.view_names,
        "edges": edge_table,
        "diffs": diffs_encoded,
        "creation_seconds": collection.creation_seconds,
    }


def collection_from_payload(payload: dict) -> MaterializedCollection:
    """Rebuild a collection from a :func:`collection_payload` dict.

    Raises :class:`StoreError` on any structurally malformed payload.
    """
    try:
        return _decode_payload(payload)
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise StoreError(
            f"malformed collection payload: "
            f"{type(error).__name__}: {error}") from None


def save_collection(collection: MaterializedCollection,
                    path: PathLike,
                    compress: Optional[bool] = None) -> None:
    """Write a collection's difference stream and metadata to ``path``.

    ``compress`` gzips the document; when ``None`` it is inferred from a
    ``.gz`` suffix. The write is atomic (temp file + ``os.replace``).
    """
    path = Path(path)
    if compress is None:
        compress = path.suffix == ".gz"
    payload = collection_payload(collection)
    envelope = {
        "format": _FORMAT_VERSION,
        "sha256": _payload_digest(payload),
        "payload": payload,
    }
    data = json.dumps(envelope).encode("utf-8")
    if compress:
        data = gzip.compress(data)
    atomic_write_bytes(path, data)


def load_collection(path: PathLike) -> MaterializedCollection:
    """Read a collection previously written by :func:`save_collection`.

    Reads both v2 (checksummed envelope, optionally gzipped) and legacy v1
    documents. Any unreadable, corrupted, or structurally malformed file
    raises :class:`StoreError` with the path in the message.
    """
    try:
        raw = Path(path).read_bytes()
        if raw[:2] == _GZIP_MAGIC:
            raw = gzip.decompress(raw)
        document = json.loads(raw.decode("utf-8"))
    except (OSError, EOFError, ValueError) as error:
        raise StoreError(f"cannot read collection from {path}: {error}") \
            from None
    if not isinstance(document, dict):
        raise StoreError(
            f"malformed collection document in {path}: expected a JSON "
            f"object, got {type(document).__name__}")
    version = document.get("format")
    if version == _FORMAT_VERSION:
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise StoreError(
                f"malformed collection document in {path}: v2 envelope "
                f"has no payload object")
        expected = document.get("sha256")
        actual = _payload_digest(payload)
        if expected != actual:
            raise StoreError(
                f"collection {path} failed checksum verification "
                f"(stored {expected!r}, computed {actual!r}): the file is "
                f"corrupted")
    elif version == 1:
        payload = document
    else:
        raise StoreError(
            f"unsupported collection format {version!r} in {path}")
    try:
        return _decode_payload(payload)
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise StoreError(
            f"malformed collection document in {path}: "
            f"{type(error).__name__}: {error}") from None


def _decode_payload(payload: dict) -> MaterializedCollection:
    edge_table = [tuple(edge) for edge in payload["edges"]]
    diffs = []
    for encoded in payload["diffs"]:
        diffs.append({edge_table[index]: mult for index, mult in encoded})
    from repro.core.diff_stream import diff_sizes, view_sizes_from_diffs

    return MaterializedCollection(
        name=payload["name"],
        source=payload["source"],
        view_names=list(payload["view_names"]),
        diffs=diffs,
        view_sizes=view_sizes_from_diffs(diffs),
        diff_sizes=diff_sizes(diffs),
        creation_seconds=float(payload.get("creation_seconds", 0.0)),
        ordering=None,
        ebm=None,
    )
