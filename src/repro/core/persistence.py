"""Persistence for materialized view collections.

The paper's Storage Manager persists views and collections so analytics can
run in later sessions without re-materializing. We serialize a
:class:`MaterializedCollection` to a compact JSON document: edge tuples are
interned into a table and difference sets reference them by index.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.view_collection import MaterializedCollection
from repro.errors import StoreError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_collection(collection: MaterializedCollection,
                    path: PathLike) -> None:
    """Write a collection's difference stream and metadata to ``path``."""
    edge_index: Dict[tuple, int] = {}
    edge_table: List[list] = []
    diffs_encoded = []
    for diff in collection.diffs:
        encoded = []
        for edge, mult in diff.items():
            index = edge_index.get(edge)
            if index is None:
                index = len(edge_table)
                edge_index[edge] = index
                edge_table.append(list(edge))
            encoded.append([index, mult])
        diffs_encoded.append(encoded)
    document = {
        "format": _FORMAT_VERSION,
        "name": collection.name,
        "source": collection.source,
        "view_names": collection.view_names,
        "edges": edge_table,
        "diffs": diffs_encoded,
        "creation_seconds": collection.creation_seconds,
    }
    Path(path).write_text(json.dumps(document))


def load_collection(path: PathLike) -> MaterializedCollection:
    """Read a collection previously written by :func:`save_collection`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise StoreError(f"cannot read collection from {path}: {error}") \
            from None
    if document.get("format") != _FORMAT_VERSION:
        raise StoreError(
            f"unsupported collection format {document.get('format')!r} "
            f"in {path}")
    edge_table = [tuple(edge) for edge in document["edges"]]
    diffs = []
    for encoded in document["diffs"]:
        diffs.append({edge_table[index]: mult for index, mult in encoded})
    from repro.core.diff_stream import diff_sizes, view_sizes_from_diffs

    return MaterializedCollection(
        name=document["name"],
        source=document["source"],
        view_names=list(document["view_names"]),
        diffs=diffs,
        view_sizes=view_sizes_from_diffs(diffs),
        diff_sizes=diff_sizes(diffs),
        creation_seconds=float(document.get("creation_seconds", 0.0)),
        ordering=None,
        ebm=None,
    )
