"""The Graphsurge facade (paper Figure 4).

Ties together the stores, GVDL, the view-collection pipeline, and the
analytics executor::

    gs = Graphsurge()
    gs.load_graph("Calls", "nodes.csv", "edges.csv")
    gs.execute("create view long on Calls edges where duration > 10")
    gs.execute('''create view collection hist on Calls
                  [y2018: year <= 2018], [y2019: year <= 2019]''')
    result = gs.run_analytics(Wcc(), "hist", mode=ExecutionMode.ADAPTIVE)
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.aggregates import compute_aggregate_view
from repro.core.computation import GraphComputation
from repro.core.executor import (
    AnalyticsExecutor,
    CollectionRunResult,
    ExecutionMode,
    ViewRunResult,
)
from repro.core.view_collection import (
    MaterializedCollection,
    ViewCollectionDefinition,
)
from repro.errors import UnknownGraphError
from repro.graph.csv_loader import load_graph_csv
from repro.graph.edge_stream import EdgeStream
from repro.graph.property_graph import PropertyGraph
from repro.graph.store import GraphStore, ViewStore
from repro.gvdl.ast import (
    AggregateViewStmt,
    FilteredViewStmt,
    Statement,
    ViewCollectionStmt,
)
from repro.gvdl.parser import parse_program
from repro.gvdl.predicate import compile_predicate


class Graphsurge:
    """A Graphsurge session: graphs, views, collections, analytics.

    Parameters:

    * ``workers`` — worker count for the execution layer.
    * ``backend`` — ``"inline"`` (default: all shards in this process,
      parallel time simulated) or ``"process"`` (one OS process per
      worker; see ``docs/parallel.md``). Counters and outputs are
      byte-identical between backends.
    * ``order_collections`` — default ordering method applied when
      materializing view collections (``identity`` keeps the user order;
      ``christofides`` enables the §4 optimizer).
    """

    def __init__(self, workers: int = 1,
                 order_collections: str = "identity",
                 weight_property: Optional[str] = None,
                 backend: str = "inline"):
        self.workers = workers
        self.backend = backend
        self.order_collections = order_collections
        self.weight_property = weight_property
        self.graphs = GraphStore()
        self.views = ViewStore()
        self.executor = AnalyticsExecutor(workers=workers, backend=backend)

    # -- graph management ---------------------------------------------------------

    def load_graph(self, name: str, nodes_csv, edges_csv) -> PropertyGraph:
        """Import a base graph from CSV files (paper §3)."""
        graph = load_graph_csv(name, nodes_csv, edges_csv)
        self.graphs.add(graph, name)
        return graph

    def add_graph(self, graph: PropertyGraph,
                  name: Optional[str] = None) -> None:
        """Register an in-memory graph (e.g. from the dataset generators)."""
        self.graphs.add(graph, name)

    def mutate_graph(self, name: str, add_nodes=(), add_edges=(),
                     retract_edges=()) -> dict:
        """Append/retract against a base graph in place.

        ``add_nodes`` — iterable of ``(node_id, properties)``;
        ``add_edges`` — iterable of ``(src, dst, properties)``;
        ``retract_edges`` — iterable of ``(src, dst)`` pairs, each removing
        *all* matching edges. Returns mutation counts. Views and
        collections previously materialized from the graph are **not**
        updated — callers that serve them (the :mod:`repro.serve` session)
        must re-materialize; see :meth:`repro.serve.session.ServeSession.mutate`.
        """
        if name not in self.graphs:
            raise UnknownGraphError(f"unknown base graph {name!r}")
        graph = self.graphs.get(name)
        nodes_added = edges_added = edges_removed = 0
        for node_id, properties in add_nodes:
            graph.add_node(int(node_id), properties)
            nodes_added += 1
        for src, dst, properties in add_edges:
            graph.add_edge(int(src), int(dst), properties)
            edges_added += 1
        for src, dst in retract_edges:
            edges_removed += graph.remove_edges(int(src), int(dst))
        return {"nodes_added": nodes_added, "edges_added": edges_added,
                "edges_removed": edges_removed}

    def resolve(self, name: str) -> PropertyGraph:
        """Find a base graph or a materialized (filtered/aggregate) view."""
        if name in self.graphs:
            return self.graphs.get(name)
        if self.views.has_view(name):
            return self.views.get_view(name)
        raise UnknownGraphError(f"unknown graph or view {name!r}")

    # -- GVDL ------------------------------------------------------------------------

    def execute(self, gvdl_text: str) -> List[str]:
        """Run one or more GVDL statements; returns created object names."""
        created: List[str] = []
        for statement in parse_program(gvdl_text):
            created.append(self._execute_statement(statement))
        return created

    def _execute_statement(self, statement: Statement) -> str:
        if isinstance(statement, FilteredViewStmt):
            self._create_filtered_view(statement)
        elif isinstance(statement, ViewCollectionStmt):
            self._create_collection(statement)
        elif isinstance(statement, AggregateViewStmt):
            self._create_aggregate_view(statement)
        else:  # pragma: no cover - parser produces only the above
            raise TypeError(f"unknown statement {statement!r}")
        return statement.name

    def _create_filtered_view(self, statement: FilteredViewStmt) -> None:
        base = self.resolve(statement.source)
        evaluate = compile_predicate(
            statement.predicate, base.edge_schema, base.node_schema)
        view = base.filter_edges(
            lambda edge, src, dst: evaluate(edge.properties, src, dst),
            name=statement.name)
        self.views.add_view(statement.name, view)

    def _create_collection(self, statement: ViewCollectionStmt) -> None:
        base = self.resolve(statement.source)
        definition = ViewCollectionDefinition(
            statement.name, statement.source, statement.views)
        collection = definition.materialize(
            base,
            order_method=self.order_collections,
            workers=self.workers,
            weight_property=self.weight_property,
        )
        self.views.add_collection(statement.name, collection)

    def _create_aggregate_view(self, statement: AggregateViewStmt) -> None:
        base = self.resolve(statement.source)
        view = compute_aggregate_view(base, statement)
        self.views.add_view(statement.name, view)

    def explain(self, name: str, checkpoint_path=None,
                run_result=None, analysis=None) -> str:
        """Summarize a materialized collection (similarity, split hints).

        With ``checkpoint_path``, the summary also reports whether a run
        checkpoint exists for the collection — how many views completed
        and where a resumed run would pick up. With ``run_result`` (the
        value returned by :meth:`run_analytics`), it also reports the
        run's per-operator trace memory. With ``analysis`` (an
        :class:`repro.analyze.AnalysisReport`, e.g. from
        :meth:`analyze`), it appends the static-analysis verdict for the
        plan the collection would be run with.
        """
        from repro.core.diagnostics import summarize_collection

        collection = self.views.get_collection(name)
        return summarize_collection(
            collection, checkpoint_path=checkpoint_path,
            run_result=run_result, analysis=analysis).render()

    def analyze(self, computation: GraphComputation, ignore=(),
                concurrency: bool = False, stream: bool = False):
        """Statically analyze the plan a computation would run with.

        Builds the computation's dataflow exactly as a run would (without
        feeding any view) and returns the
        :class:`repro.analyze.AnalysisReport` of the plan analyzer and
        UDF linter. ``concurrency=True`` adds the shard-safety pass
        (``GS-S3xx``: process-backend hazards, pickle probe);
        ``stream=True`` adds the stream-maintainability pass
        (``GS-M4xx``: retraction and compaction hazards for continuous
        queries). Pass the report to :meth:`explain` to render it
        alongside the collection summary.
        """
        from repro.analyze import analyze_computation

        return analyze_computation(computation, workers=self.workers,
                                   ignore=ignore, concurrency=concurrency,
                                   stream=stream)

    # -- persistence ---------------------------------------------------------------

    def save_session(self, directory) -> None:
        """Persist base graphs, materialized views, and collections.

        Layout: ``graphs/`` and ``views/`` hold CSV graph stores;
        ``collections/`` holds one JSON file per collection.
        """
        from pathlib import Path

        from repro.core.persistence import save_collection
        from repro.graph.store import GraphStore

        directory = Path(directory)
        self.graphs.save(directory / "graphs")
        view_store = GraphStore()
        for name in self.views.view_names():
            view_store.add(self.views.get_view(name), name)
        view_store.save(directory / "views")
        collections_dir = directory / "collections"
        collections_dir.mkdir(parents=True, exist_ok=True)
        for name in self.views.collection_names():
            save_collection(self.views.get_collection(name),
                            collections_dir / f"{name}.json")

    @classmethod
    def load_session(cls, directory, **kwargs) -> "Graphsurge":
        """Restore a session written by :meth:`save_session`."""
        from pathlib import Path

        from repro.core.persistence import load_collection
        from repro.graph.store import GraphStore

        directory = Path(directory)
        session = cls(**kwargs)
        session.graphs = GraphStore.load(directory / "graphs")
        views_dir = directory / "views"
        if (views_dir / "manifest.json").exists():
            for name in (loaded := GraphStore.load(views_dir)).names():
                session.views.add_view(name, loaded.get(name))
        collections_dir = directory / "collections"
        if collections_dir.is_dir():
            for path in sorted(collections_dir.glob("*.json")):
                collection = load_collection(path)
                session.views.add_collection(collection.name, collection)
        return session

    # -- analytics ----------------------------------------------------------------------

    def run_analytics(self, computation: GraphComputation, target: str,
                      mode: ExecutionMode = ExecutionMode.ADAPTIVE,
                      batch_size: int = 10,
                      keep_outputs: bool = False,
                      cost_metric: str = "wall",
                      checkpoint_path=None,
                      resume_from=None,
                      budget=None,
                      retry_policy=None,
                      tracer=None,
                      strict: bool = False,
                      sanitize: bool = False
                      ) -> Union[ViewRunResult, CollectionRunResult]:
        """Run a computation on a view, base graph, or view collection.

        The resilience options (``checkpoint_path``, ``resume_from``,
        ``budget``, ``retry_policy`` — see :mod:`repro.core.resilience`)
        apply to collection runs; ``budget`` also guards single-view runs.
        With ``tracer`` (a :class:`repro.observe.TraceSink`) the run is
        traced: per-view critical-path profiles are attached to the
        result, and the sink holds the exportable span stream. Tracing
        never changes the metered cost counters. With ``strict=True`` the
        plan is statically analyzed at build time and the run refuses
        (:class:`repro.errors.AnalysisError`) on any ERROR finding; on
        the process backend the analysis includes the shard-safety pass.
        With ``sanitize=True`` (process backend only) every epoch is
        shadow-executed inline and the run fails
        (:class:`repro.errors.SanitizerError`) at the first divergent
        ``(operator, timestamp, shard)``; a clean sanitized run's
        counters are byte-identical to an unsanitized one.
        """
        executor = self.executor
        if tracer is not None or strict or sanitize:
            executor = AnalyticsExecutor(workers=self.workers,
                                         tracer=tracer, strict=strict,
                                         backend=self.backend,
                                         sanitize=sanitize)
        if self.views.has_collection(target):
            collection: MaterializedCollection = \
                self.views.get_collection(target)
            return executor.run_on_collection(
                computation, collection, mode=mode, batch_size=batch_size,
                keep_outputs=keep_outputs, cost_metric=cost_metric,
                checkpoint_path=checkpoint_path, resume_from=resume_from,
                budget=budget, retry_policy=retry_policy)
        graph = self.resolve(target)
        edges = EdgeStream.from_graph(graph, weight=self.weight_property)
        return executor.run_on_view(computation, edges,
                                    keep_output=True,
                                    view_name=target, budget=budget)

    def stream(self, target: Optional[str], queries,
               compact_every: int = 8, keep_epochs: int = 4,
               journal_path=None):
        """Open a streaming session over a loaded graph or view.

        ``queries`` is a list of computation names or ``(name, params)``
        pairs; each becomes a continuously maintained query seeded with
        the target's current edges (``target=None`` starts from an empty
        graph — every edge arrives via the stream). Returns a
        :class:`repro.stream.StreamEngine` — feed it
        :class:`repro.stream.StreamBatch` appends/retracts via
        ``ingest`` and read per-epoch deltas or on-demand snapshots.
        With ``journal_path`` every ingested batch is journaled so the
        stream can be :meth:`~repro.stream.StreamEngine.resume`-d after
        a crash.
        """
        from repro.stream import StreamEngine

        graph = self.resolve(target) if target else None
        engine = StreamEngine(
            graph, workers=self.workers, backend=self.backend,
            weight_property=self.weight_property,
            compact_every=compact_every, keep_epochs=keep_epochs)
        for entry in queries:
            if isinstance(entry, str):
                engine.register(entry)
            else:
                name, params = entry
                engine.register(name, params)
        if journal_path is not None:
            engine.attach_journal(journal_path)
        return engine

    def profile(self, computation: GraphComputation, target: str,
                mode: ExecutionMode = ExecutionMode.ADAPTIVE,
                batch_size: int = 10,
                cost_metric: str = "wall",
                trace_out=None):
        """Run a computation traced; answer "why is view k slow".

        Returns a :class:`repro.observe.ProfileReport`: the run result
        (with per-view critical-path profiles attached), ``render()`` for
        the text report, ``chrome_trace()``/``write_chrome_trace(path)``
        for a ``chrome://tracing``-loadable timeline, and ``flame()`` for
        a text rollup. ``trace_out`` writes the Chrome trace as part of
        the call. The metered ``total_work``/``parallel_time`` are
        byte-identical to an untraced run.
        """
        from repro.observe import ProfileReport, TraceSink

        sink = TraceSink(self.workers)
        result = self.run_analytics(
            computation, target, mode=mode, batch_size=batch_size,
            cost_metric=cost_metric, tracer=sink)
        report = ProfileReport(result=result, sink=sink, target=target)
        if trace_out is not None:
            report.write_chrome_trace(trace_out)
        return report
