"""Collection ordering (paper §4).

The Collection Ordering Problem (COP) asks for the view order minimizing the
total size of the edge difference sets. COP is NP-hard (reduction from
consecutive block minimization, Theorem 4.1); Graphsurge uses the
CBMP 1.5-approximation of Haddadi & Layouni — pad a zero column, build the
complete graph of column Hamming distances, and run Christofides' TSP
heuristic — which yields a 3-approximation for COP.

This package implements the full pipeline (Algorithm 1) plus the exact and
greedy baselines used in tests and ablation benchmarks.
"""

from repro.core.ordering.problem import (
    consecutive_blocks,
    diff_count_for_order,
    exact_best_order,
    random_order,
)
from repro.core.ordering.hamming import hamming_distance_matrix
from repro.core.ordering.christofides import christofides_tour
from repro.core.ordering.optimizer import order_collection

__all__ = [
    "consecutive_blocks",
    "diff_count_for_order",
    "exact_best_order",
    "random_order",
    "hamming_distance_matrix",
    "christofides_tour",
    "order_collection",
]
