"""Pairwise column Hamming distances of the zero-padded EBM (Algorithm 1).

Following the paper's Algorithm 1, the edge rows are partitioned across the
W workers; each worker computes a partial distance matrix
``D_i = C_i^T (U − C_i) + (U − C_i)^T C_i`` over its row block ``C_i`` of
the padded matrix ``[0 | B]``, and worker 0 sums the partials. The padding
column turns the TSP *path* problem into a *tour* problem while preserving
approximation quality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.timely.meter import WorkMeter


def hamming_distance_matrix(matrix: np.ndarray, workers: int = 1,
                            meter: Optional[WorkMeter] = None) -> np.ndarray:
    """Return the (k+1)x(k+1) distance matrix of ``[0 | matrix]`` columns.

    Column 0 of the result corresponds to the padded all-zero column; the
    remaining indices are the views shifted by one.
    """
    meter = meter or WorkMeter()
    m, k = matrix.shape
    padded = np.zeros((m, k + 1), dtype=np.int64)
    padded[:, 1:] = matrix.astype(np.int64)
    total = np.zeros((k + 1, k + 1), dtype=np.int64)
    workers = max(1, workers)
    blocks = np.array_split(np.arange(m), workers)
    meter.begin_step()
    for worker_id, rows in enumerate(blocks):
        if rows.size == 0:
            continue
        block = padded[rows]
        complement = 1 - block
        partial = block.T @ complement + complement.T @ block
        total += partial
        # Each worker touches its row block once per view pair; meter the
        # dominant matmul cost.
        meter.record(worker_id, int(rows.size) * (k + 1))
    meter.end_step()
    return total
