"""The Collection Ordering Optimizer (paper Algorithm 1).

Given an edge boolean matrix, find a view order with small total difference
count: pad a zero column, compute the Hamming-distance clique sharded over
workers, solve TSP with Christofides, rotate the tour to start at the
padded column, and read the view order off the tour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.ordering.christofides import christofides_tour
from repro.core.ordering.hamming import hamming_distance_matrix
from repro.core.ordering.problem import (
    diff_count_for_order,
    exact_best_order,
    random_order,
)
from repro.errors import OrderingError
from repro.timely.meter import WorkMeter


@dataclass
class OrderingResult:
    """Outcome of the ordering optimizer."""

    order: List[int]           # permutation of view indices
    diff_count: int            # COP objective under `order`
    identity_diff_count: int   # objective of the user-given order
    elapsed_seconds: float

    @property
    def improvement(self) -> float:
        if self.diff_count == 0:
            return float("inf") if self.identity_diff_count else 1.0
        return self.identity_diff_count / self.diff_count


def _order_by_tour(matrix: np.ndarray, workers: int,
                   meter: Optional[WorkMeter]) -> List[int]:
    distances = hamming_distance_matrix(matrix, workers=workers, meter=meter)
    tour = christofides_tour(distances)
    zero_pos = tour.index(0)
    rotated = tour[zero_pos:] + tour[:zero_pos]
    # Drop the padded zero column (vertex 0) and shift back to view indices.
    order = [v - 1 for v in rotated[1:]]
    # The tour is a cycle: both directions are valid; pick the better one.
    reverse = list(reversed(order))
    if diff_count_for_order(matrix, reverse) < \
            diff_count_for_order(matrix, order):
        return reverse
    return order


def _order_greedy(matrix: np.ndarray, workers: int,
                  meter: Optional[WorkMeter]) -> List[int]:
    """Nearest-neighbour baseline from the padded zero column."""
    distances = hamming_distance_matrix(matrix, workers=workers, meter=meter)
    k = matrix.shape[1]
    unvisited = set(range(1, k + 1))
    current = 0
    order: List[int] = []
    while unvisited:
        nxt = min(unvisited, key=lambda v: (distances[current, v], v))
        unvisited.remove(nxt)
        order.append(nxt - 1)
        current = nxt
    return order


def order_collection(matrix: np.ndarray, method: str = "christofides",
                     workers: int = 1, seed: int = 0,
                     meter: Optional[WorkMeter] = None) -> OrderingResult:
    """Choose a view order for an EBM.

    ``method``:

    * ``christofides`` — the paper's optimizer (Algorithm 1).
    * ``greedy`` — nearest-neighbour ablation baseline.
    * ``exact`` — brute force (small k only).
    * ``identity`` — keep the user-given order.
    * ``random`` — seeded shuffle (the paper's R1/R2/R3 baselines).
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise OrderingError("EBM matrix must be 2-D")
    k = matrix.shape[1]
    started = time.perf_counter()
    if method == "christofides":
        order = _order_by_tour(matrix, workers, meter)
    elif method == "greedy":
        order = _order_greedy(matrix, workers, meter)
    elif method == "exact":
        order = exact_best_order(matrix)
    elif method == "identity":
        order = list(range(k))
    elif method == "random":
        order = random_order(k, seed)
    else:
        raise OrderingError(f"unknown ordering method {method!r}")
    elapsed = time.perf_counter() - started
    return OrderingResult(
        order=order,
        diff_count=diff_count_for_order(matrix, order),
        identity_diff_count=diff_count_for_order(matrix),
        elapsed_seconds=elapsed,
    )
