"""Christofides' 1.5-approximation for metric TSP.

Pipeline: minimum spanning tree (Prim) → minimum-weight perfect matching of
the odd-degree vertices (Blossom algorithm via networkx) → Eulerian circuit
of the union multigraph (Hierholzer) → shortcut repeated vertices.

The Hamming-distance graph of the padded EBM satisfies the triangle
inequality (Haddadi & Layouni 2008), so the 1.5 bound applies and COP
inherits a factor-3 guarantee (paper §4).
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from repro.errors import OrderingError


def prim_mst(weights: np.ndarray) -> List[tuple]:
    """Minimum spanning tree edges of a complete graph (Prim's algorithm)."""
    n = weights.shape[0]
    if n == 0:
        return []
    in_tree = [False] * n
    best_cost = [np.inf] * n
    best_edge = [-1] * n
    best_cost[0] = 0
    edges: List[tuple] = []
    for _ in range(n):
        u = -1
        for v in range(n):
            if not in_tree[v] and (u == -1 or best_cost[v] < best_cost[u]):
                u = v
        in_tree[u] = True
        if best_edge[u] >= 0:
            edges.append((best_edge[u], u))
        for v in range(n):
            if not in_tree[v] and weights[u, v] < best_cost[v]:
                best_cost[v] = weights[u, v]
                best_edge[v] = u
    return edges


def _min_weight_perfect_matching(odd: List[int], weights: np.ndarray) -> List[tuple]:
    """Minimum-weight perfect matching on the odd-degree vertices.

    Uses the Blossom algorithm through networkx's ``min_weight_matching``;
    the vertex count is the number of views + 1, so this stays tiny.
    """
    graph = nx.Graph()
    for i, u in enumerate(odd):
        for v in odd[i + 1:]:
            graph.add_edge(u, v, weight=float(weights[u, v]))
    matching = nx.algorithms.matching.min_weight_matching(graph)
    if 2 * len(matching) != len(odd):
        raise OrderingError("matching failed to cover all odd vertices")
    return [tuple(pair) for pair in matching]


def _eulerian_circuit(n: int, multi_edges: List[tuple]) -> List[int]:
    """Hierholzer's algorithm on an (even-degree) multigraph."""
    adjacency: Dict[int, List[List]] = {v: [] for v in range(n)}
    edge_slots = []
    for idx, (u, v) in enumerate(multi_edges):
        slot = [u, v, False]
        edge_slots.append(slot)
        adjacency[u].append(slot)
        adjacency[v].append(slot)
    start = multi_edges[0][0] if multi_edges else 0
    stack = [start]
    circuit: List[int] = []
    pointers = {v: 0 for v in range(n)}
    while stack:
        v = stack[-1]
        advanced = False
        while pointers[v] < len(adjacency[v]):
            slot = adjacency[v][pointers[v]]
            if slot[2]:
                pointers[v] += 1
                continue
            slot[2] = True
            other = slot[1] if slot[0] == v else slot[0]
            stack.append(other)
            advanced = True
            break
        if not advanced:
            circuit.append(stack.pop())
    circuit.reverse()
    return circuit


def christofides_tour(weights: np.ndarray) -> List[int]:
    """Return a Hamiltonian tour (vertex list, no repeat of the start).

    ``weights`` must be a symmetric matrix satisfying the triangle
    inequality (up to the usual metric-TSP caveats).
    """
    weights = np.asarray(weights, dtype=float)
    n = weights.shape[0]
    if weights.shape != (n, n):
        raise OrderingError(f"weight matrix must be square, got {weights.shape}")
    if n == 0:
        return []
    if n == 1:
        return [0]
    if n == 2:
        return [0, 1]
    mst = prim_mst(weights)
    degree = [0] * n
    for u, v in mst:
        degree[u] += 1
        degree[v] += 1
    odd = [v for v in range(n) if degree[v] % 2 == 1]
    matching = _min_weight_perfect_matching(odd, weights) if odd else []
    circuit = _eulerian_circuit(n, mst + matching)
    seen = set()
    tour: List[int] = []
    for v in circuit:
        if v not in seen:
            seen.add(v)
            tour.append(v)
    if len(tour) != n:
        raise OrderingError(
            f"tour covers {len(tour)} of {n} vertices; multigraph was not "
            f"connected")
    return tour


def tour_length(weights: np.ndarray, tour: List[int]) -> float:
    """Cyclic tour length under ``weights``."""
    total = 0.0
    for i, u in enumerate(tour):
        v = tour[(i + 1) % len(tour)]
        total += float(weights[u, v])
    return total
