"""The Analytics Computation Executor (paper §3.2.2, §5).

Runs a :class:`GraphComputation` over a materialized view collection under
one of three policies:

* ``DIFF_ONLY`` — one dataflow instance; each view's edge difference set is
  fed as the next epoch, so the engine shares computation across views.
* ``SCRATCH`` — a fresh dataflow per view fed the full view. Iterative
  computations still run differentially *across their own iterations* (that
  is inherent to the engine), but nothing is shared between views.
* ``ADAPTIVE`` — the splitting optimizer picks per batch of views.

Long collection runs are made fault tolerant by the resilience layer
(:mod:`repro.core.resilience`): pass ``checkpoint_path=`` to journal every
completed view, ``resume_from=`` to restart an interrupted run at view *k*
instead of view 0, ``budget=`` to bound wall time / work / fixed-point
iterations, and ``retry_policy=`` to retry failing views and degrade a
persistently failing differential view to a from-scratch run.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.computation import GraphComputation
from repro.core.resilience import (
    CheckpointWriter,
    FaultPlan,
    RetryPolicy,
    RunBudget,
    collection_fingerprint,
    decode_diff,
    encode_diff,
    load_checkpoint,
)
from repro.core.splitting.optimizer import AdaptiveSplitter, SplitDecision
from repro.core.view_collection import MaterializedCollection
from repro.observe.profile import CollectionProfile, ViewProfile, \
    profile_view
from repro.observe.tracer import TraceSink
from repro.differential.dataflow import Dataflow
from repro.differential.multiset import Diff
from repro.differential.operators.io import CaptureOp
from repro.errors import BudgetExceededError, CheckpointError, ComputationError
from repro.graph.edge_stream import EdgeStream, edge_diff_to_input


class ExecutionMode(enum.Enum):
    DIFF_ONLY = "diff-only"
    SCRATCH = "scratch"
    ADAPTIVE = "adaptive"


@dataclass
class ViewRunResult:
    """Cost and output of the computation on one view."""

    view_name: str
    strategy: SplitDecision
    wall_seconds: float
    work: int
    parallel_time: int
    view_size: int
    diff_size: int
    output_diff_size: int
    output: Optional[Diff] = field(default=None, repr=False)
    #: The per-view *output difference set* (paper §3.2.2: "The output
    #: difference stream can then be stored or processed by the user").
    #: Populated when the executor runs with ``keep_output_diffs=True``.
    #: Note: a view executed from scratch (strategy SCRATCH) restarts the
    #: stream — its "difference" is its full output, not a delta against
    #: the previous view.
    output_diff: Optional[Diff] = field(default=None, repr=False)
    #: Where this view's simulated time went, when the run was traced
    #: (see :mod:`repro.observe`): the critical path over the view's
    #: supersteps, whose length equals ``parallel_time`` exactly.
    profile: Optional["ViewProfile"] = field(default=None, repr=False)
    #: How many execution attempts this view took (1 = first try).
    attempts: int = 1
    #: True when the view was planned differential but degraded to a
    #: from-scratch run after repeated differential-mode failures.
    degraded: bool = False
    #: ``"ErrorType: message"`` for every failed attempt, in order.
    failures: List[str] = field(default_factory=list)

    def vertex_map(self) -> Dict[Any, Any]:
        """Render the accumulated output as ``{vertex: value}``.

        Raises if a vertex carries several values (use the raw ``output``
        for multi-valued computations).
        """
        if self.output is None:
            raise ComputationError("outputs were not kept for this run")
        out: Dict[Any, Any] = {}
        for (vertex, value), mult in self.output.items():
            if mult != 1 or vertex in out:
                raise ComputationError(
                    f"vertex {vertex!r} has a non-unique result")
            out[vertex] = value
        return out


@dataclass
class CollectionRunResult:
    """Outcome of running a computation across a whole collection."""

    computation: str
    collection: str
    mode: ExecutionMode
    views: List[ViewRunResult]
    total_wall_seconds: float
    total_work: int
    total_parallel_time: int
    split_points: List[int]
    #: How many leading views were restored from a checkpoint instead of
    #: being executed in this call (0 for a non-resumed run).
    resumed_views: int = 0
    #: Stored trace entries per operator at the end of the run (shared
    #: arrangements counted once, at their ArrangeOp). Shows trace-memory
    #: growth and the arrangement-sharing saving; feeds ``explain``.
    trace_memory: Optional[Dict[str, int]] = None
    #: Per-view critical-path profiles when the run was traced
    #: (``AnalyticsExecutor(tracer=...)``); ``None`` otherwise.
    profile: Optional["CollectionProfile"] = None

    def outputs_by_view(self) -> Dict[str, Diff]:
        """Kept per-view outputs keyed by view name.

        Requires the run to have used ``keep_outputs=True`` and the
        collection to have unique view names (both hold for every
        collection the verification harness generates).
        """
        out: Dict[str, Diff] = {}
        for view in self.views:
            if view.output is None:
                raise ComputationError(
                    f"outputs were not kept for view {view.view_name!r}")
            if view.view_name in out:
                raise ComputationError(
                    f"duplicate view name {view.view_name!r}")
            out[view.view_name] = view.output
        return out

    def strategy_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for view in self.views:
            counts[view.strategy.value] = counts.get(view.strategy.value, 0) + 1
        return counts

    def failed_views(self) -> List[ViewRunResult]:
        """Views that needed retries or degraded to scratch."""
        return [view for view in self.views
                if view.failures or view.degraded]


class AnalyticsExecutor:
    """Drives computations over single views and view collections.

    Pass ``tracer=TraceSink(workers)`` to record the activity stream of
    every run (see :mod:`repro.observe`): each view's ``ViewRunResult``
    then carries a critical-path profile and the collection result a
    ``CollectionProfile``. Tracing never changes the metered counters.
    """

    def __init__(self, workers: int = 1,
                 tracer: Optional[TraceSink] = None,
                 strict: bool = False,
                 backend: str = "inline",
                 sanitize: bool = False):
        from repro.errors import ConfigError
        from repro.timely.cluster import validate_backend

        self.workers = workers
        validate_backend(backend, workers)
        #: Execution backend for every dataflow this executor builds:
        #: ``"inline"`` (default, single process) or ``"process"`` (one OS
        #: process per worker; see ``docs/parallel.md``). Counters and
        #: outputs are byte-identical between backends.
        self.backend = backend
        self.tracer = tracer
        #: Strict mode statically analyzes every plan at build time and
        #: refuses (``AnalysisError``) to run one with ERROR findings —
        #: before the epoch driver touches a single view. On
        #: ``backend="process"`` the analysis includes the shard-safety
        #: pass (``GS-S3xx``), so e.g. a kernel that fails the pickle
        #: probe is refused before any epoch executes.
        self.strict = strict
        if sanitize and backend != "process":
            raise ConfigError(
                "sanitize=True shadow-executes the process backend "
                "against an inline twin; it requires backend='process' "
                "(an inline run has nothing to diverge from)")
        #: Sanitize mode shadow-executes every epoch on an inline twin of
        #: the plan and raises :class:`~repro.errors.SanitizerError` at
        #: the first divergent (operator, timestamp, shard) address. See
        #: :mod:`repro.verify.sanitize`.
        self.sanitize = sanitize
        self._strict_cleared: set = set()

    # -- single views -----------------------------------------------------------

    def run_on_view(self, computation: GraphComputation,
                    edges: EdgeStream,
                    keep_output: bool = True,
                    view_name: str = "view",
                    budget: Optional[RunBudget] = None,
                    fault_plan: Optional[FaultPlan] = None) -> ViewRunResult:
        """Run a computation on one materialized view (paper §3.1.2)."""
        dataflow, capture = self._fresh_dataflow(computation, budget,
                                                 fault_plan)
        try:
            started = time.perf_counter()
            before = dataflow.meter.snapshot()
            mark = self.tracer.mark() if self.tracer is not None else 0
            diff = edges.as_input_diff(directed=computation.directed)
            epoch = dataflow.step({"edges": diff})
            after = dataflow.meter.snapshot()
            spent = before.delta(after)
            output = capture.value_at_epoch(epoch)
        finally:
            dataflow.close()
        profile = None
        if self.tracer is not None:
            profile = profile_view(self.tracer, view_name, mark,
                                   self.tracer.mark())
        return ViewRunResult(
            view_name=view_name,
            strategy=SplitDecision.SCRATCH,
            wall_seconds=time.perf_counter() - started,
            work=spent.total_work,
            parallel_time=spent.parallel_time,
            view_size=len(edges),
            diff_size=len(edges),
            output_diff_size=len(output),
            output=output if keep_output else None,
            profile=profile,
        )

    # -- collections --------------------------------------------------------------

    def run_on_collection(self, computation: GraphComputation,
                          collection: MaterializedCollection,
                          mode: ExecutionMode = ExecutionMode.ADAPTIVE,
                          batch_size: int = 10,
                          keep_outputs: bool = False,
                          keep_output_diffs: bool = False,
                          cost_metric: str = "wall",
                          checkpoint_path=None,
                          resume_from=None,
                          budget: Optional[RunBudget] = None,
                          retry_policy: Optional[RetryPolicy] = None,
                          fault_plan: Optional[FaultPlan] = None
                          ) -> CollectionRunResult:
        """Execute the computation across every view of the collection.

        ``cost_metric`` selects what feeds the adaptive cost models:
        ``wall`` (seconds, as the paper) or ``work`` (deterministic record
        counts — useful for reproducible tests).

        ``checkpoint_path`` journals every completed view; ``resume_from``
        loads such a journal, restores the completed prefix (results,
        splitter observations, split points), rebuilds dataflow state by
        replaying the collection's cumulative difference up to the resume
        index, and continues. When only ``resume_from`` is given, the run
        keeps journaling to the same file.
        """
        if cost_metric not in ("wall", "work"):
            raise ComputationError(f"unknown cost metric {cost_metric!r}")
        if budget is not None:
            budget.start()
        splitter = AdaptiveSplitter(batch_size=batch_size)
        results: List[ViewRunResult] = []
        split_points: List[int] = []
        dataflow: Optional[Dataflow] = None
        capture: Optional[CaptureOp] = None
        total_started = time.perf_counter()

        header = {
            "computation": computation.name,
            "collection": collection.name,
            "mode": mode.value,
            "cost_metric": cost_metric,
            "batch_size": batch_size,
            "keep_outputs": keep_outputs,
            "keep_output_diffs": keep_output_diffs,
            "num_views": collection.num_views,
            "fingerprint": collection_fingerprint(collection),
        }

        writer: Optional[CheckpointWriter] = None
        start_index = 0
        state = None
        if resume_from is not None:
            if checkpoint_path is None:
                checkpoint_path = resume_from
            state = load_checkpoint(resume_from)
        if state is not None:
            self._check_resume_header(state.header, header, resume_from)
            for record in state.views:
                # Replaying decide() + observe() in original order rebuilds
                # the splitter's models *and* batch state exactly.
                splitter.decide(record["index"], record["view_size"],
                                record["diff_size"])
                observation = record["observation"]
                if observation["kind"] == "scratch":
                    splitter.observe_scratch(observation["size"],
                                             observation["cost"])
                else:
                    splitter.observe_differential(observation["size"],
                                                  observation["cost"])
                results.append(self._result_from_record(record))
                if record["split"]:
                    split_points.append(record["index"])
            start_index = len(results)
            if 0 < start_index < collection.num_views:
                # Rebuild dataflow state: the cumulative diff of all views
                # up to the resume index, collapsed into one epoch, leaves
                # the engine in the same accumulated state the interrupted
                # run had after view ``start_index - 1``.
                dataflow, capture = self._replay_dataflow(
                    computation, collection, start_index - 1, budget,
                    fault_plan)

        try:
            if checkpoint_path is not None:
                if state is not None and str(state.path) == str(checkpoint_path):
                    writer = CheckpointWriter.resume(checkpoint_path, state,
                                                     fault_plan)
                else:
                    writer = CheckpointWriter.fresh(checkpoint_path, header,
                                                    fault_plan)
            for index in range(start_index, collection.num_views):
                view_size = collection.view_sizes[index]
                diff_size = collection.diff_sizes[index]
                planned = self._choose(mode, splitter, index, view_size,
                                       diff_size, dataflow)
                result, dataflow, capture = self._run_view_with_retries(
                    computation, collection, index, planned, dataflow,
                    capture, keep_outputs=keep_outputs,
                    keep_output_diffs=keep_output_diffs, budget=budget,
                    fault_plan=fault_plan, retry_policy=retry_policy)
                executed = result.strategy
                split = executed is SplitDecision.SCRATCH and index > 0
                if split:
                    split_points.append(index)
                results.append(result)
                cost = (result.wall_seconds if cost_metric == "wall"
                        else float(result.work))
                if executed is SplitDecision.SCRATCH:
                    observation = {"kind": "scratch", "size": view_size,
                                   "cost": cost}
                    splitter.observe_scratch(view_size, cost)
                else:
                    observation = {"kind": "differential", "size": diff_size,
                                   "cost": cost}
                    splitter.observe_differential(diff_size, cost)
                if writer is not None:
                    writer.append_view(self._view_record(
                        index, result, split, observation))
        except BudgetExceededError as error:
            if dataflow is not None:
                dataflow.close()
            error.partial = CollectionRunResult(
                computation=computation.name,
                collection=collection.name,
                mode=mode,
                views=results,
                total_wall_seconds=time.perf_counter() - total_started,
                total_work=sum(r.work for r in results),
                total_parallel_time=sum(r.parallel_time for r in results),
                split_points=split_points,
                resumed_views=start_index,
            )
            raise
        finally:
            if writer is not None:
                writer.close()
        trace_memory = None
        if dataflow is not None:
            from repro.differential.debug import operator_record_counts

            # Gather counts before close: on the process backend they come
            # from the still-running workers over the exchange channels.
            trace_memory = operator_record_counts(dataflow)
            dataflow.close()
        profile = None
        if self.tracer is not None:
            profile = CollectionProfile(
                views=[r.profile for r in results if r.profile is not None])
        return CollectionRunResult(
            computation=computation.name,
            collection=collection.name,
            mode=mode,
            views=results,
            total_wall_seconds=time.perf_counter() - total_started,
            total_work=sum(r.work for r in results),
            total_parallel_time=sum(r.parallel_time for r in results),
            split_points=split_points,
            resumed_views=start_index,
            trace_memory=trace_memory,
            profile=profile,
        )

    # -- per-view execution with recovery ---------------------------------------

    def _run_view_with_retries(
            self, computation: GraphComputation,
            collection: MaterializedCollection, index: int,
            planned: SplitDecision, dataflow: Optional[Dataflow],
            capture: Optional[CaptureOp], *, keep_outputs: bool,
            keep_output_diffs: bool, budget: Optional[RunBudget],
            fault_plan: Optional[FaultPlan],
            retry_policy: Optional[RetryPolicy]
    ) -> Tuple[ViewRunResult, Dataflow, CaptureOp]:
        """Run one view; on failure retry, then degrade differential→scratch.

        Every retry rebuilds a fresh dataflow (the failed one may hold
        half-applied state): a differential retry replays the cumulative
        diff up to the previous view first, a scratch attempt feeds the
        full view. ``BudgetExceededError`` is never retried.
        """
        failures: List[str] = []
        attempts = 0
        phases = [planned]
        if planned is SplitDecision.DIFFERENTIAL and index > 0:
            phases.append(SplitDecision.SCRATCH)
        attempts_per_phase = 1 + (retry_policy.max_retries
                                  if retry_policy is not None else 0)
        last_error: Optional[BaseException] = None
        for attempt_strategy in phases:
            for _ in range(attempts_per_phase):
                if attempts > 0:
                    assert retry_policy is not None
                    retry_policy.pause(attempts)
                attempts += 1
                try:
                    result, dataflow, capture = self._attempt_view(
                        computation, collection, index, attempt_strategy,
                        dataflow, capture, keep_outputs=keep_outputs,
                        keep_output_diffs=keep_output_diffs, budget=budget,
                        fault_plan=fault_plan)
                    result.attempts = attempts
                    result.failures = failures
                    result.degraded = attempt_strategy is not planned
                    return result, dataflow, capture
                except BudgetExceededError:
                    raise
                except Exception as error:
                    failures.append(f"{type(error).__name__}: {error}")
                    last_error = error
                    # The failed dataflow may be mid-epoch: poison it
                    # (releasing its worker processes, if any).
                    if dataflow is not None:
                        dataflow.close()
                    dataflow = capture = None
                    if retry_policy is None:
                        raise
        assert last_error is not None
        raise last_error

    def _attempt_view(self, computation: GraphComputation,
                      collection: MaterializedCollection, index: int,
                      strategy: SplitDecision, dataflow: Optional[Dataflow],
                      capture: Optional[CaptureOp], *, keep_outputs: bool,
                      keep_output_diffs: bool, budget: Optional[RunBudget],
                      fault_plan: Optional[FaultPlan]
                      ) -> Tuple[ViewRunResult, Dataflow, CaptureOp]:
        started = time.perf_counter()
        incoming = dataflow
        if strategy is SplitDecision.DIFFERENTIAL and dataflow is None:
            # Rebuilt differential attempt (retry or resume continuation).
            dataflow, capture = self._replay_dataflow(
                computation, collection, index - 1, budget, fault_plan)
        if strategy is SplitDecision.SCRATCH or dataflow is None:
            if dataflow is not None:
                # A scratch view replaces the running dataflow; release
                # the old one's worker processes before rebuilding.
                dataflow.close()
            dataflow, capture = self._fresh_dataflow(computation, budget,
                                                     fault_plan)
            feed = edge_diff_to_input(
                collection.full_view_edges(index),
                directed=computation.directed)
        else:
            feed = collection.input_diff_for_view(
                index, directed=computation.directed)
        before = dataflow.meter.snapshot()
        mark = self.tracer.mark() if self.tracer is not None else 0
        try:
            epoch = dataflow.step({"edges": feed})
        except BaseException:
            # A dataflow built inside this attempt would otherwise leak its
            # worker processes: the caller only knows about ``incoming``.
            if dataflow is not incoming:
                dataflow.close()
            raise
        after = dataflow.meter.snapshot()
        spent = before.delta(after)
        assert capture is not None
        output_diff = capture.diff_at((epoch,))
        profile = None
        if self.tracer is not None:
            profile = profile_view(self.tracer,
                                   collection.view_names[index], mark,
                                   self.tracer.mark())
        result = ViewRunResult(
            view_name=collection.view_names[index],
            strategy=strategy,
            wall_seconds=time.perf_counter() - started,
            work=spent.total_work,
            parallel_time=spent.parallel_time,
            view_size=collection.view_sizes[index],
            diff_size=collection.diff_sizes[index],
            output_diff_size=len(output_diff),
            output=(capture.value_at_epoch(epoch)
                    if keep_outputs else None),
            output_diff=(output_diff if keep_output_diffs else None),
            profile=profile,
        )
        return result, dataflow, capture

    def _replay_dataflow(self, computation: GraphComputation,
                         collection: MaterializedCollection,
                         upto_index: int, budget: Optional[RunBudget],
                         fault_plan: Optional[FaultPlan]
                         ) -> Tuple[Dataflow, CaptureOp]:
        """Fresh dataflow advanced to the accumulated state of a view.

        Feeds the cumulative edge difference of views ``0..upto_index``
        collapsed into epoch 0. Differential semantics guarantee the
        accumulated collections (and hence every later view's outputs)
        match a run that fed the views one epoch at a time.
        """
        dataflow, capture = self._fresh_dataflow(computation, budget,
                                                 fault_plan)
        replay = edge_diff_to_input(
            collection.full_view_edges(upto_index),
            directed=computation.directed)
        try:
            dataflow.step({"edges": replay})
        except BaseException:
            dataflow.close()
            raise
        return dataflow, capture

    # -- checkpoint record (de)serialization -------------------------------------

    @staticmethod
    def _view_record(index: int, result: ViewRunResult, split: bool,
                     observation: dict) -> dict:
        return {
            "index": index,
            "view_name": result.view_name,
            "strategy": result.strategy.value,
            "wall_seconds": result.wall_seconds,
            "work": result.work,
            "parallel_time": result.parallel_time,
            "view_size": result.view_size,
            "diff_size": result.diff_size,
            "output_diff_size": result.output_diff_size,
            "attempts": result.attempts,
            "degraded": result.degraded,
            "failures": list(result.failures),
            "split": split,
            "observation": observation,
            "output": encode_diff(result.output),
            "output_diff": encode_diff(result.output_diff),
        }

    @staticmethod
    def _result_from_record(record: dict) -> ViewRunResult:
        return ViewRunResult(
            view_name=record["view_name"],
            strategy=SplitDecision(record["strategy"]),
            wall_seconds=record["wall_seconds"],
            work=record["work"],
            parallel_time=record["parallel_time"],
            view_size=record["view_size"],
            diff_size=record["diff_size"],
            output_diff_size=record["output_diff_size"],
            output=decode_diff(record["output"]),
            output_diff=decode_diff(record["output_diff"]),
            attempts=record.get("attempts", 1),
            degraded=record.get("degraded", False),
            failures=list(record.get("failures", ())),
        )

    @staticmethod
    def _check_resume_header(stored: dict, expected: dict,
                             path) -> None:
        for key in ("fingerprint", "computation", "mode", "cost_metric",
                    "batch_size", "num_views"):
            if stored.get(key) != expected[key]:
                raise CheckpointError(
                    f"checkpoint {path} does not match this run: "
                    f"{key} is {stored.get(key)!r}, run has "
                    f"{expected[key]!r}")
        for key in ("keep_outputs", "keep_output_diffs"):
            if expected[key] and not stored.get(key):
                raise CheckpointError(
                    f"checkpoint {path} was written without {key}; cannot "
                    f"resume a run that requests it")

    # -- internals -------------------------------------------------------------------

    def _choose(self, mode: ExecutionMode, splitter: AdaptiveSplitter,
                index: int, view_size: int, diff_size: int,
                dataflow: Optional[Dataflow]) -> SplitDecision:
        if mode is ExecutionMode.DIFF_ONLY:
            # The very first view necessarily computes from nothing; calling
            # it differential keeps the single-dataflow semantics.
            return (SplitDecision.SCRATCH if dataflow is None
                    else SplitDecision.DIFFERENTIAL)
        if mode is ExecutionMode.SCRATCH:
            return SplitDecision.SCRATCH
        return splitter.decide(index, view_size, diff_size)

    def _fresh_dataflow(self, computation: GraphComputation,
                        budget: Optional[RunBudget] = None,
                        fault_plan: Optional[FaultPlan] = None):
        dataflow = Dataflow(workers=self.workers, budget=budget,
                            fault_plan=fault_plan, tracer=self.tracer,
                            backend=self.backend)
        edges = dataflow.new_input("edges")
        result = computation.build(dataflow, edges)
        if result.scope is not dataflow.root:
            raise ComputationError(
                f"{computation.name}: build() must return a root-scope "
                f"collection")
        capture = dataflow.capture(result, "results")
        if self.strict and id(computation) not in self._strict_cleared:
            from repro.analyze import analyze
            from repro.errors import AnalysisError

            report = analyze(dataflow,
                             concurrency=(self.backend == "process"))
            if not report.ok:
                raise AnalysisError(report)
            # Retries and scratch views rebuild the same plan; one clean
            # analysis per computation object is enough.
            self._strict_cleared.add(id(computation))
        if self.sanitize:
            from repro.verify.sanitize import attach_shadow

            attach_shadow(dataflow, computation)
        return dataflow, capture
