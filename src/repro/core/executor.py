"""The Analytics Computation Executor (paper §3.2.2, §5).

Runs a :class:`GraphComputation` over a materialized view collection under
one of three policies:

* ``DIFF_ONLY`` — one dataflow instance; each view's edge difference set is
  fed as the next epoch, so the engine shares computation across views.
* ``SCRATCH`` — a fresh dataflow per view fed the full view. Iterative
  computations still run differentially *across their own iterations* (that
  is inherent to the engine), but nothing is shared between views.
* ``ADAPTIVE`` — the splitting optimizer picks per batch of views.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.computation import GraphComputation
from repro.core.splitting.optimizer import AdaptiveSplitter, SplitDecision
from repro.core.view_collection import MaterializedCollection
from repro.differential.dataflow import Dataflow
from repro.differential.multiset import Diff
from repro.differential.operators.io import CaptureOp
from repro.errors import ComputationError
from repro.graph.edge_stream import EdgeStream, edge_diff_to_input


class ExecutionMode(enum.Enum):
    DIFF_ONLY = "diff-only"
    SCRATCH = "scratch"
    ADAPTIVE = "adaptive"


@dataclass
class ViewRunResult:
    """Cost and output of the computation on one view."""

    view_name: str
    strategy: SplitDecision
    wall_seconds: float
    work: int
    parallel_time: int
    view_size: int
    diff_size: int
    output_diff_size: int
    output: Optional[Diff] = field(default=None, repr=False)
    #: The per-view *output difference set* (paper §3.2.2: "The output
    #: difference stream can then be stored or processed by the user").
    #: Populated when the executor runs with ``keep_output_diffs=True``.
    #: Note: a view executed from scratch (strategy SCRATCH) restarts the
    #: stream — its "difference" is its full output, not a delta against
    #: the previous view.
    output_diff: Optional[Diff] = field(default=None, repr=False)

    def vertex_map(self) -> Dict[Any, Any]:
        """Render the accumulated output as ``{vertex: value}``.

        Raises if a vertex carries several values (use the raw ``output``
        for multi-valued computations).
        """
        if self.output is None:
            raise ComputationError("outputs were not kept for this run")
        out: Dict[Any, Any] = {}
        for (vertex, value), mult in self.output.items():
            if mult != 1 or vertex in out:
                raise ComputationError(
                    f"vertex {vertex!r} has a non-unique result")
            out[vertex] = value
        return out


@dataclass
class CollectionRunResult:
    """Outcome of running a computation across a whole collection."""

    computation: str
    collection: str
    mode: ExecutionMode
    views: List[ViewRunResult]
    total_wall_seconds: float
    total_work: int
    total_parallel_time: int
    split_points: List[int]

    def strategy_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for view in self.views:
            counts[view.strategy.value] = counts.get(view.strategy.value, 0) + 1
        return counts


class AnalyticsExecutor:
    """Drives computations over single views and view collections."""

    def __init__(self, workers: int = 1):
        self.workers = workers

    # -- single views -----------------------------------------------------------

    def run_on_view(self, computation: GraphComputation,
                    edges: EdgeStream,
                    keep_output: bool = True) -> ViewRunResult:
        """Run a computation on one materialized view (paper §3.1.2)."""
        dataflow, capture = self._fresh_dataflow(computation)
        started = time.perf_counter()
        before = dataflow.meter.snapshot()
        diff = edges.as_input_diff(directed=computation.directed)
        epoch = dataflow.step({"edges": diff})
        after = dataflow.meter.snapshot()
        spent = before.delta(after)
        output = capture.value_at_epoch(epoch)
        return ViewRunResult(
            view_name="view",
            strategy=SplitDecision.SCRATCH,
            wall_seconds=time.perf_counter() - started,
            work=spent.total_work,
            parallel_time=spent.parallel_time,
            view_size=len(edges),
            diff_size=len(edges),
            output_diff_size=len(output),
            output=output if keep_output else None,
        )

    # -- collections --------------------------------------------------------------

    def run_on_collection(self, computation: GraphComputation,
                          collection: MaterializedCollection,
                          mode: ExecutionMode = ExecutionMode.ADAPTIVE,
                          batch_size: int = 10,
                          keep_outputs: bool = False,
                          keep_output_diffs: bool = False,
                          cost_metric: str = "wall") -> CollectionRunResult:
        """Execute the computation across every view of the collection.

        ``cost_metric`` selects what feeds the adaptive cost models:
        ``wall`` (seconds, as the paper) or ``work`` (deterministic record
        counts — useful for reproducible tests).
        """
        if cost_metric not in ("wall", "work"):
            raise ComputationError(f"unknown cost metric {cost_metric!r}")
        splitter = AdaptiveSplitter(batch_size=batch_size)
        results: List[ViewRunResult] = []
        split_points: List[int] = []
        dataflow: Optional[Dataflow] = None
        capture: Optional[CaptureOp] = None
        total_started = time.perf_counter()
        for index, view_name in enumerate(collection.view_names):
            view_size = collection.view_sizes[index]
            diff_size = collection.diff_sizes[index]
            strategy = self._choose(mode, splitter, index, view_size,
                                    diff_size, dataflow)
            if strategy is SplitDecision.SCRATCH and index > 0:
                split_points.append(index)
            started = time.perf_counter()
            if strategy is SplitDecision.SCRATCH or dataflow is None:
                dataflow, capture = self._fresh_dataflow(computation)
                feed = edge_diff_to_input(
                    collection.full_view_edges(index),
                    directed=computation.directed)
            else:
                feed = collection.input_diff_for_view(
                    index, directed=computation.directed)
            before = dataflow.meter.snapshot()
            epoch = dataflow.step({"edges": feed})
            after = dataflow.meter.snapshot()
            spent = before.delta(after)
            wall = time.perf_counter() - started
            assert capture is not None
            output_diff = capture.diff_at((epoch,))
            result = ViewRunResult(
                view_name=view_name,
                strategy=strategy,
                wall_seconds=wall,
                work=spent.total_work,
                parallel_time=spent.parallel_time,
                view_size=view_size,
                diff_size=diff_size,
                output_diff_size=len(output_diff),
                output=(capture.value_at_epoch(epoch)
                        if keep_outputs else None),
                output_diff=(output_diff if keep_output_diffs else None),
            )
            results.append(result)
            cost = wall if cost_metric == "wall" else float(spent.total_work)
            if strategy is SplitDecision.SCRATCH:
                splitter.observe_scratch(view_size, cost)
            else:
                splitter.observe_differential(diff_size, cost)
        return CollectionRunResult(
            computation=computation.name,
            collection=collection.name,
            mode=mode,
            views=results,
            total_wall_seconds=time.perf_counter() - total_started,
            total_work=sum(r.work for r in results),
            total_parallel_time=sum(r.parallel_time for r in results),
            split_points=split_points,
        )

    # -- internals -------------------------------------------------------------------

    def _choose(self, mode: ExecutionMode, splitter: AdaptiveSplitter,
                index: int, view_size: int, diff_size: int,
                dataflow: Optional[Dataflow]) -> SplitDecision:
        if mode is ExecutionMode.DIFF_ONLY:
            # The very first view necessarily computes from nothing; calling
            # it differential keeps the single-dataflow semantics.
            return (SplitDecision.SCRATCH if dataflow is None
                    else SplitDecision.DIFFERENTIAL)
        if mode is ExecutionMode.SCRATCH:
            return SplitDecision.SCRATCH
        return splitter.decide(index, view_size, diff_size)

    def _fresh_dataflow(self, computation: GraphComputation):
        dataflow = Dataflow(workers=self.workers)
        edges = dataflow.new_input("edges")
        result = computation.build(dataflow, edges)
        if result.scope is not dataflow.root:
            raise ComputationError(
                f"{computation.name}: build() must return a root-scope "
                f"collection")
        capture = dataflow.capture(result, "results")
        return dataflow, capture
