"""Diagnostics for materialized view collections.

Helps users understand a collection before running analytics on it: how
similar consecutive views are, whether ordering would help, and where the
natural split points sit. ``Graphsurge.explain(name)`` prints the summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.view_collection import MaterializedCollection


@dataclass
class CollectionSummary:
    """Aggregate similarity statistics of a materialized collection."""

    name: str
    num_views: int
    total_diffs: int
    view_sizes: List[int]
    diff_sizes: List[int]
    #: |δC_i| / |GV_i| per view (0 for empty views); view 0 excluded —
    #: its difference set is the whole first view by construction.
    churn_ratios: List[float]
    #: Jaccard similarity |GV_{i-1} ∩ GV_i| / |GV_{i-1} ∪ GV_i|.
    jaccard: List[float]

    @property
    def mean_churn(self) -> float:
        if not self.churn_ratios:
            return 0.0
        return sum(self.churn_ratios) / len(self.churn_ratios)

    @property
    def min_jaccard(self) -> float:
        return min(self.jaccard) if self.jaccard else 1.0

    def likely_split_points(self, churn_threshold: float = 1.0) -> List[int]:
        """Views whose churn ratio exceeds the threshold — candidates for
        running from scratch (the adaptive optimizer confirms at run
        time)."""
        return [index + 1
                for index, ratio in enumerate(self.churn_ratios)
                if ratio >= churn_threshold]

    def render(self) -> str:
        lines = [
            f"collection {self.name}: {self.num_views} views, "
            f"{self.total_diffs} total edge differences",
            f"view sizes: min {min(self.view_sizes)}, "
            f"max {max(self.view_sizes)}",
            f"mean churn |δC|/|GV|: {self.mean_churn:.2f}; "
            f"min consecutive Jaccard: {self.min_jaccard:.2f}",
        ]
        splits = self.likely_split_points()
        if splits:
            lines.append(f"high-churn views (likely split points): {splits}")
        else:
            lines.append("no high-churn views: diff-only execution should "
                         "dominate")
        return "\n".join(lines)


def summarize_collection(collection: MaterializedCollection
                         ) -> CollectionSummary:
    """Compute similarity statistics for a collection."""
    churn: List[float] = []
    jaccard: List[float] = []
    previous = set()
    for index in range(collection.num_views):
        current = set(collection.full_view_edges(index))
        if index > 0:
            size = max(1, len(current))
            churn.append(collection.diff_sizes[index] / size)
            union = len(previous | current)
            inter = len(previous & current)
            jaccard.append(inter / union if union else 1.0)
        previous = current
    return CollectionSummary(
        name=collection.name,
        num_views=collection.num_views,
        total_diffs=collection.total_diffs,
        view_sizes=list(collection.view_sizes),
        diff_sizes=list(collection.diff_sizes),
        churn_ratios=churn,
        jaccard=jaccard,
    )
