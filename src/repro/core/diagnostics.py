"""Diagnostics for materialized view collections.

Helps users understand a collection before running analytics on it: how
similar consecutive views are, whether ordering would help, and where the
natural split points sit. ``Graphsurge.explain(name)`` prints the summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.view_collection import MaterializedCollection


@dataclass
class CheckpointStatus:
    """Resumability of a collection, read from a run checkpoint journal."""

    path: str
    completed_views: int
    total_views: int
    last_view_name: Optional[str]
    truncated: bool
    #: The journal exists but could not be read (bad header, checksum
    #: mismatch beyond a torn tail, wrong format). A corrupt journal is
    #: not resumable, but — unlike an absent one — the user should know
    #: it is there and broken rather than silently see "no checkpoint".
    corrupt: bool = False
    error: Optional[str] = None

    @property
    def resumable(self) -> bool:
        if self.corrupt:
            return False
        return 0 < self.completed_views < self.total_views

    def render(self) -> str:
        if self.corrupt:
            detail = f": {self.error}" if self.error else ""
            return (f"checkpoint: WARNING - journal at {self.path} is "
                    f"corrupt and cannot be resumed{detail}; delete it "
                    f"(or pass a fresh path) to start over")
        if self.completed_views >= self.total_views:
            return (f"checkpoint: complete ({self.completed_views}/"
                    f"{self.total_views} views) at {self.path}")
        tail = " [torn tail dropped]" if self.truncated else ""
        last = (f", last completed {self.last_view_name!r}"
                if self.last_view_name else "")
        return (f"checkpoint: resumable at view {self.completed_views}/"
                f"{self.total_views}{last} ({self.path}){tail}")


def checkpoint_status(checkpoint_path) -> Optional[CheckpointStatus]:
    """Inspect a run checkpoint journal.

    Returns ``None`` only when no journal exists at the path. A journal
    that exists but cannot be read (corrupt header, checksum failure)
    yields a status with ``corrupt=True`` carrying the error message —
    conflating the two previously made a damaged checkpoint look like a
    clean slate, so ``explain()`` would happily suggest starting over
    without warning that prior progress was lost to corruption.
    """
    from pathlib import Path

    from repro.core.resilience import load_checkpoint
    from repro.errors import CheckpointError

    def corrupt(message: str) -> CheckpointStatus:
        return CheckpointStatus(
            path=str(checkpoint_path),
            completed_views=0,
            total_views=0,
            last_view_name=None,
            truncated=False,
            corrupt=True,
            error=message,
        )

    exists = Path(checkpoint_path).exists()
    try:
        state = load_checkpoint(checkpoint_path)
    except CheckpointError as error:
        return corrupt(str(error))
    if state is None:
        if exists:
            # load_checkpoint treats a journal with no trustworthy record
            # at all as "no checkpoint"; for diagnostics the distinction
            # matters — the file is there, so something wrote (and lost)
            # a run's progress.
            return corrupt("no trustworthy record survives in the journal")
        return None
    return CheckpointStatus(
        path=state.path,
        completed_views=state.completed_views,
        total_views=int(state.header.get("num_views", 0)),
        last_view_name=state.last_view_name,
        truncated=state.truncated,
    )


@dataclass
class CollectionSummary:
    """Aggregate similarity statistics of a materialized collection."""

    name: str
    num_views: int
    total_diffs: int
    view_sizes: List[int]
    diff_sizes: List[int]
    #: |δC_i| / |GV_i| per view (0 for empty views); view 0 excluded —
    #: its difference set is the whole first view by construction.
    churn_ratios: List[float]
    #: Jaccard similarity |GV_{i-1} ∩ GV_i| / |GV_{i-1} ∪ GV_i|.
    jaccard: List[float]
    #: Resumability info when a run checkpoint was inspected (see
    #: :func:`checkpoint_status`); ``None`` when no journal was consulted.
    checkpoint: Optional[CheckpointStatus] = None
    #: Stored trace entries per operator from a finished analytics run
    #: (``CollectionRunResult.trace_memory``); ``None`` when no run was
    #: supplied. Makes trace-memory growth — and the saving from shared
    #: arrangements — visible from the CLI.
    trace_memory: Optional[Dict[str, int]] = None
    #: Per-view critical-path profiles (``CollectionRunResult.profile``)
    #: when the supplied run was traced; lets ``explain()`` answer "why is
    #: view k slow" directly.
    profile: Optional[object] = None
    #: Static-analysis verdict for the plan the collection would be run
    #: with (a :class:`repro.analyze.AnalysisReport`, see
    #: ``Graphsurge.analyze``); ``None`` when no analysis was supplied.
    analysis: Optional[object] = None

    @property
    def mean_churn(self) -> float:
        if not self.churn_ratios:
            return 0.0
        return sum(self.churn_ratios) / len(self.churn_ratios)

    @property
    def min_jaccard(self) -> float:
        return min(self.jaccard) if self.jaccard else 1.0

    def likely_split_points(self, churn_threshold: float = 1.0) -> List[int]:
        """Views whose churn ratio exceeds the threshold — candidates for
        running from scratch (the adaptive optimizer confirms at run
        time)."""
        return [index + 1
                for index, ratio in enumerate(self.churn_ratios)
                if ratio >= churn_threshold]

    def render(self) -> str:
        lines = [
            f"collection {self.name}: {self.num_views} views, "
            f"{self.total_diffs} total edge differences",
            f"view sizes: min {min(self.view_sizes)}, "
            f"max {max(self.view_sizes)}",
            f"mean churn |δC|/|GV|: {self.mean_churn:.2f}; "
            f"min consecutive Jaccard: {self.min_jaccard:.2f}",
        ]
        splits = self.likely_split_points()
        if splits:
            lines.append(f"high-churn views (likely split points): {splits}")
        else:
            lines.append("no high-churn views: diff-only execution should "
                         "dominate")
        if self.checkpoint is not None:
            lines.append(self.checkpoint.render())
        if self.trace_memory is not None:
            total = sum(self.trace_memory.values())
            lines.append(f"trace memory: {total} stored difference entries "
                         f"across {len(self.trace_memory)} operators")
            top = sorted(self.trace_memory.items(),
                         key=lambda item: -item[1])[:5]
            for name, entries in top:
                if entries:
                    lines.append(f"  {name}: {entries}")
        if self.profile is not None:
            slowest = self.profile.slowest()
            if slowest is not None:
                lines.append(
                    f"slowest view: {slowest.view_name!r} "
                    f"(critical path {slowest.critical_path.length} units "
                    f"over {slowest.critical_path.supersteps} supersteps)")
                for contributor in slowest.critical_path.top(3):
                    lines.append(
                        f"  {contributor.operator} @ epoch "
                        f"{contributor.epoch}: {contributor.units} units")
        if self.analysis is not None:
            errors = self.analysis.errors()
            warnings = self.analysis.warnings()
            if not self.analysis.findings:
                lines.append(
                    f"static analysis: clean "
                    f"({self.analysis.operators_scanned} operators, "
                    f"{self.analysis.udfs_scanned} UDFs)")
            else:
                lines.append(
                    f"static analysis: {len(errors)} error(s), "
                    f"{len(warnings)} warning(s)")
                for finding in self.analysis.sorted_findings()[:5]:
                    lines.append("  " + finding.render().splitlines()[0])
                remaining = len(self.analysis.findings) - 5
                if remaining > 0:
                    lines.append(f"  ... and {remaining} more (run the "
                                 f"`analyze` subcommand for all)")
        return "\n".join(lines)


def summarize_collection(collection: MaterializedCollection,
                         checkpoint_path=None,
                         run_result=None,
                         analysis=None) -> CollectionSummary:
    """Compute similarity statistics for a collection.

    With ``checkpoint_path``, the summary also reports whether a run
    checkpoint exists for the collection and how far it got. With
    ``run_result`` (a ``CollectionRunResult``), it reports the run's final
    per-operator trace memory. With ``analysis`` (an
    ``AnalysisReport``), it appends the static-analysis verdict.
    """
    churn: List[float] = []
    jaccard: List[float] = []
    previous = set()
    for index in range(collection.num_views):
        current = set(collection.full_view_edges(index))
        if index > 0:
            size = max(1, len(current))
            churn.append(collection.diff_sizes[index] / size)
            union = len(previous | current)
            inter = len(previous & current)
            jaccard.append(inter / union if union else 1.0)
        previous = current
    return CollectionSummary(
        name=collection.name,
        num_views=collection.num_views,
        total_diffs=collection.total_diffs,
        view_sizes=list(collection.view_sizes),
        diff_sizes=list(collection.diff_sizes),
        churn_ratios=churn,
        jaccard=jaccard,
        checkpoint=(checkpoint_status(checkpoint_path)
                    if checkpoint_path is not None else None),
        trace_memory=(run_result.trace_memory
                      if run_result is not None else None),
        profile=(getattr(run_result, "profile", None)
                 if run_result is not None else None),
        analysis=analysis,
    )
