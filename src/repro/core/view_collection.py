"""View collections: definition and three-step materialization (paper §3.2).

Pipeline:

1. **EBM** — evaluate every view predicate on every edge.
2. **Collection ordering** — optionally reorder views to minimize total
   differences (paper §4).
3. **Edge difference stream** — render the ordered EBM as per-view edge
   difference sets consistent with differential-computation semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.diff_stream import (
    EdgeDiff,
    compute_diff_stream,
    diff_sizes,
    total_diff_count,
    view_sizes_from_diffs,
)
from repro.core.ebm import EdgeBooleanMatrix, build_ebm
from repro.core.ordering.optimizer import OrderingResult, order_collection
from repro.differential.multiset import Diff
from repro.errors import ConfigError
from repro.graph.edge_stream import edge_diff_to_input
from repro.graph.property_graph import PropertyGraph
from repro.gvdl.ast import Predicate
from repro.timely.meter import WorkMeter


@dataclass
class MaterializedCollection:
    """An ordered view collection ready for the analytics executor."""

    name: str
    source: str
    view_names: List[str]
    diffs: List[EdgeDiff]
    view_sizes: List[int]
    diff_sizes: List[int]
    creation_seconds: float
    ordering: Optional[OrderingResult] = None
    ebm: Optional[EdgeBooleanMatrix] = field(default=None, repr=False)

    @property
    def num_views(self) -> int:
        return len(self.view_names)

    @property
    def total_diffs(self) -> int:
        """The paper's ``#Diffs`` metric (Table 4)."""
        return sum(self.diff_sizes)

    def input_diff_for_view(self, index: int, directed: bool = True) -> Diff:
        """Dataflow input records for view ``index``'s difference set."""
        return edge_diff_to_input(self.diffs[index], directed=directed)

    def full_view_edges(self, index: int) -> EdgeDiff:
        """The complete edge set of view ``index`` (for scratch runs)."""
        view: EdgeDiff = {}
        for diff in self.diffs[:index + 1]:
            for edge, mult in diff.items():
                new = view.get(edge, 0) + mult
                if new == 0:
                    view.pop(edge, None)
                else:
                    view[edge] = new
        return view


@dataclass
class ViewCollectionDefinition:
    """A parsed-but-unmaterialized view collection."""

    name: str
    source: str
    views: Tuple[Tuple[str, Predicate], ...]

    def materialize(self, graph: PropertyGraph,
                    order_method: str = "identity",
                    workers: int = 1,
                    weight_property: Optional[str] = None,
                    seed: int = 0,
                    meter: Optional[WorkMeter] = None
                    ) -> MaterializedCollection:
        """Run the three materialization steps against a base graph.

        ``order_method`` is passed to the ordering optimizer; the default
        ``identity`` keeps the user-given order (the paper applies the
        optimizer only when a good manual order is unclear).
        """
        meter = meter or WorkMeter(workers)
        started = time.perf_counter()
        names = [name for name, _pred in self.views]
        predicates = [pred for _name, pred in self.views]
        ebm = build_ebm(graph, names, predicates,
                        weight_property=weight_property, meter=meter,
                        workers=workers)
        ordering = None
        if order_method != "identity":
            ordering = order_collection(
                ebm.matrix, method=order_method, workers=workers,
                seed=seed, meter=meter)
            ebm = ebm.reorder(ordering.order)
        diffs = compute_diff_stream(ebm, meter=meter)
        elapsed = time.perf_counter() - started
        return MaterializedCollection(
            name=self.name,
            source=self.source,
            view_names=list(ebm.view_names),
            diffs=diffs,
            view_sizes=view_sizes_from_diffs(diffs),
            diff_sizes=diff_sizes(diffs),
            creation_seconds=elapsed,
            ordering=ordering,
            ebm=ebm,
        )


def reorder_collection(collection: MaterializedCollection,
                       order_method: str = "christofides",
                       workers: int = 1, seed: int = 0
                       ) -> MaterializedCollection:
    """Re-run the ordering optimizer on an already-materialized collection.

    Reconstructs the membership matrix from the difference stream (no
    predicate re-evaluation needed) and rebuilds the difference sets under
    the new order — useful when a collection was created with the
    optimizer off, or to compare orderings of a loaded collection.
    """
    import time as _time

    import numpy as np

    started = _time.perf_counter()
    edge_index: dict = {}
    for diff in collection.diffs:
        for edge in diff:
            edge_index.setdefault(edge, len(edge_index))
    edges = [None] * len(edge_index)
    for edge, row in edge_index.items():
        edges[row] = edge
    matrix = np.zeros((len(edge_index), collection.num_views), dtype=bool)
    current = np.zeros(len(edge_index), dtype=np.int8)
    for view, diff in enumerate(collection.diffs):
        for edge, mult in diff.items():
            current[edge_index[edge]] += mult
        matrix[:, view] = current > 0
    from repro.core.ebm import EdgeBooleanMatrix
    from repro.core.ordering.optimizer import order_collection as _order

    ordering = _order(matrix, method=order_method, workers=workers,
                      seed=seed)
    ebm = EdgeBooleanMatrix(edges, collection.view_names, matrix).reorder(
        ordering.order)
    diffs = compute_diff_stream(ebm)
    return MaterializedCollection(
        name=collection.name,
        source=collection.source,
        view_names=list(ebm.view_names),
        diffs=diffs,
        view_sizes=view_sizes_from_diffs(diffs),
        diff_sizes=diff_sizes(diffs),
        creation_seconds=_time.perf_counter() - started,
        ordering=ordering,
        ebm=ebm,
    )


def collection_from_diffs(name: str, diffs: Sequence[EdgeDiff],
                          view_names: Optional[Sequence[str]] = None,
                          source: str = "synthetic") -> MaterializedCollection:
    """Build a collection directly from difference sets.

    Used by benchmark workloads that generate churn programmatically (e.g.
    the paper's Orkut experiment adds/removes random edges per view rather
    than evaluating predicates).
    """
    diffs = [dict(d) for d in diffs]
    names = list(view_names) if view_names is not None else [
        f"view-{i}" for i in range(len(diffs))]
    if len(names) != len(diffs):
        raise ConfigError("one name per difference set is required")
    return MaterializedCollection(
        name=name,
        source=source,
        view_names=names,
        diffs=diffs,
        view_sizes=view_sizes_from_diffs(diffs),
        diff_sizes=diff_sizes(diffs),
        creation_seconds=0.0,
        ordering=None,
        ebm=None,
    )


__all__ = [
    "MaterializedCollection",
    "ViewCollectionDefinition",
    "collection_from_diffs",
    "reorder_collection",
    "total_diff_count",
]
