"""Aggregate views (paper §6, Graph OLAP).

An aggregate view groups nodes into super-nodes (by property values or by
explicit predicates) and folds the original edges into super-edges between
the groups, computing the requested aggregates on both. The result is a
regular :class:`PropertyGraph`, so aggregate views can be queried and
filtered again — views over views.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import GvdlTypeError, UnknownPropertyError
from repro.graph.property_graph import PropertyGraph
from repro.gvdl.ast import (
    AggregateViewStmt,
    AggSpec,
    GroupByPredicates,
    GroupByProperties,
)
from repro.gvdl.predicate import compile_node_predicate


def _aggregate(func: str, values: List[Any]) -> Any:
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise GvdlTypeError(f"unknown aggregate function {func!r}")


def _collect(specs: Iterable[AggSpec], rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for spec in specs:
        if spec.arg == "*":
            values: List[Any] = [1] * len(rows)
        else:
            values = []
            for row in rows:
                if spec.arg not in row:
                    raise UnknownPropertyError(
                        f"aggregate references unknown property {spec.arg!r}")
                values.append(row[spec.arg])
        out[spec.output_name()] = _aggregate(spec.func, values)
    return out


def compute_aggregate_view_dataflow(graph: PropertyGraph,
                                    statement: AggregateViewStmt,
                                    workers: int = 1) -> PropertyGraph:
    """Evaluate an aggregate view as a timely batch dataflow (paper §6:
    "evaluated in TD using a dataflow that consists of aggregation
    operators").

    Pipeline: nodes are mapped to their group key and aggregated into
    super-nodes; edges are joined twice against the node->group assignment
    (once per endpoint) and aggregated into super-edges. Results are
    identical to :func:`compute_aggregate_view` (tests cross-check).
    """
    from repro.timely.dataflow import TimelyDataflow

    group_key_fn = _group_key_fn(graph, statement)
    td = TimelyDataflow(workers=workers)
    nodes_in = td.input("nodes")    # (node_id, props)
    edges_in = td.input("edges")    # (src, dst, props)

    grouped = nodes_in.flat_map(
        lambda rec: [(group_key_fn(rec[1]), rec)]
        if group_key_fn(rec[1]) is not None else [],
        name="agg.assign")
    super_nodes = grouped.aggregate(
        lambda rec: rec[0],
        lambda records: _collect(statement.node_aggregates,
                                 [props for _key, (_id, props) in records]),
        name="agg.supernodes")
    node_groups = grouped.map(
        lambda rec: (rec[1][0], rec[0]), name="agg.nodegroup")

    by_src = edges_in.map(lambda rec: (rec[0], rec), name="agg.bysrc")
    with_src = by_src.join(
        node_groups, lambda _k, edge, group: (edge[1], (group, edge[2])),
        name="agg.joinsrc")
    with_both = with_src.join(
        node_groups,
        lambda _k, src_edge, dst_group: (
            (src_edge[0], dst_group), src_edge[1]),
        name="agg.joindst")
    super_edges = with_both.aggregate(
        lambda rec: rec[0],
        lambda records: {
            "count": len(records),
            **_collect(statement.edge_aggregates,
                       [props for _pair, props in records]),
        },
        name="agg.superedges")

    nodes_capture = super_nodes.capture("agg.nodes")
    edges_capture = super_edges.capture("agg.edges")
    td.run({
        "nodes": [(node.id, node.properties)
                  for node in graph.nodes.values()],
        "edges": [(edge.src, edge.dst, edge.properties)
                  for edge in graph.edges],
    })

    label_of = _group_labeler(statement)
    groups = sorted((key for key, _aggs in nodes_capture.records), key=repr)
    super_id = {key: idx for idx, key in enumerate(groups)}
    view = PropertyGraph(statement.name)
    for key, aggs in sorted(nodes_capture.records, key=lambda kv: repr(kv[0])):
        props = {"group": label_of(key)}
        if isinstance(statement.group_by, GroupByProperties):
            for prop, value in zip(statement.group_by.properties, key):
                props[prop] = value
        props.update(aggs)
        view.add_node(super_id[key], props)
    for (src_key, dst_key), aggs in sorted(
            edges_capture.records, key=lambda kv: repr(kv[0])):
        view.add_edge(super_id[src_key], super_id[dst_key], dict(aggs))
    return view


def _group_key_fn(graph: PropertyGraph, statement: AggregateViewStmt):
    """Build props -> group-key (or None when the node matches no group)."""
    if isinstance(statement.group_by, GroupByProperties):
        props_list = statement.group_by.properties
        for prop in props_list:
            if len(graph.node_schema) and prop not in graph.node_schema:
                raise UnknownPropertyError(
                    f"group by references unknown node property {prop!r}")

        def by_properties(props):
            return tuple(props.get(p) for p in props_list)

        return by_properties
    evaluators = [compile_node_predicate(p, graph.node_schema)
                  for p in statement.group_by.predicates]

    def by_predicates(props):
        for index, evaluate in enumerate(evaluators):
            if evaluate(props):
                return index
        return None

    return by_predicates


def _group_labeler(statement: AggregateViewStmt):
    if isinstance(statement.group_by, GroupByProperties):
        return lambda key: ",".join(str(v) for v in key)
    return lambda key: f"group-{key}"


def compute_aggregate_view(graph: PropertyGraph,
                           statement: AggregateViewStmt) -> PropertyGraph:
    """Evaluate an aggregate-view statement against a base graph."""
    group_of: Dict[int, Any] = {}
    group_label: Dict[Any, str] = {}
    if isinstance(statement.group_by, GroupByProperties):
        props = statement.group_by.properties
        for prop in props:
            if len(graph.node_schema) and prop not in graph.node_schema:
                raise UnknownPropertyError(
                    f"group by references unknown node property {prop!r}")
        for node in graph.nodes.values():
            key = tuple(node.properties.get(p) for p in props)
            group_of[node.id] = key
            group_label[key] = ",".join(str(v) for v in key)
    elif isinstance(statement.group_by, GroupByPredicates):
        evaluators = [compile_node_predicate(p, graph.node_schema)
                      for p in statement.group_by.predicates]
        for node in graph.nodes.values():
            for idx, evaluate in enumerate(evaluators):
                if evaluate(node.properties):
                    group_of[node.id] = idx
                    group_label[idx] = f"group-{idx}"
                    break
            # Nodes matching no predicate are dropped from the view.
    else:  # pragma: no cover - exhaustive over the union
        raise GvdlTypeError(f"unknown group-by {statement.group_by!r}")

    # Stable super-node numbering: sort groups by their repr.
    groups = sorted(group_label, key=repr)
    super_id: Dict[Any, int] = {key: idx for idx, key in enumerate(groups)}

    members: Dict[Any, List[Dict[str, Any]]] = {key: [] for key in groups}
    for node_id, key in group_of.items():
        members[key].append(graph.nodes[node_id].properties)

    view = PropertyGraph(statement.name)
    for key in groups:
        props: Dict[str, Any] = {"group": group_label[key]}
        if isinstance(statement.group_by, GroupByProperties):
            for prop, value in zip(statement.group_by.properties, key):
                props[prop] = value
        props.update(_collect(statement.node_aggregates, members[key]))
        view.add_node(super_id[key], props)

    # Bucket original edges by (super(src), super(dst)); edges with an endpoint
    # outside every group are dropped.
    buckets: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for edge in graph.edges:
        src_key = group_of.get(edge.src)
        dst_key = group_of.get(edge.dst)
        if src_key is None or dst_key is None:
            continue
        pair = (super_id[src_key], super_id[dst_key])
        buckets.setdefault(pair, []).append(edge.properties)
    for (src, dst), rows in sorted(buckets.items()):
        props = {"count": len(rows)}
        props.update(_collect(statement.edge_aggregates, rows))
        view.add_edge(src, dst, props)
    return view
