"""Fault-tolerant execution: budgets, fault injection, and run checkpoints.

Graphsurge's analytics executor processes *hundreds* of views in one long
dataflow run (paper §3.2.2, §5); without recoverable state a crash at view
180/200 throws everything away. This module provides the three building
blocks the executor and the dataflow driver use to avoid that:

* :class:`RunBudget` — hard limits on wall time, work units, and fixed-point
  iterations, enforced inside :meth:`Dataflow.step` and the ``iterate``
  operator. A crossed limit raises a structured
  :class:`~repro.errors.BudgetExceededError` instead of hanging.
* :class:`FaultPlan` — deterministic, seedable fault injection at named
  sites (``operator``, ``epoch``, ``checkpoint``) so tests can prove the
  recovery paths actually fire.
* The **run checkpoint journal** — an append-only, per-line checksummed
  JSONL file recording each completed view (result, splitter observation,
  split membership). :func:`load_checkpoint` tolerates a torn final line
  (the crash case) and :class:`CheckpointWriter` rewrites the journal to its
  validated prefix before resuming appends.

See ``docs/resilience.md`` for the file format and the resume algorithm.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    ConfigError,
    InjectedFault,
)

PathLike = Union[str, Path]

CHECKPOINT_VERSION = 1

#: Fault-injection site names understood by the engine.
FAULT_SITES = ("operator", "epoch", "checkpoint")


# -- run budgets -------------------------------------------------------------


class RunBudget:
    """Hard resource limits for one analytics run.

    The budget is *cumulative across dataflows*: a collection run that
    splits (fresh dataflow per scratch view) keeps charging the same
    budget. ``clock`` is injectable so wall-time enforcement is testable
    without sleeping.
    """

    def __init__(self, max_wall_seconds: Optional[float] = None,
                 max_work: Optional[int] = None,
                 max_iterations: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic):
        for name, value in (("max_wall_seconds", max_wall_seconds),
                            ("max_work", max_work),
                            ("max_iterations", max_iterations)):
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        self.max_wall_seconds = max_wall_seconds
        self.max_work = max_work
        self.max_iterations = max_iterations
        self._clock = clock
        self._started: Optional[float] = None
        self.work_spent = 0

    def start(self) -> None:
        """Begin the wall-time window (idempotent)."""
        if self._started is None:
            self._started = self._clock()

    @property
    def wall_spent(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def charge(self, work_units: int, site: str = "") -> None:
        """Account ``work_units`` and enforce the work and wall limits."""
        self.work_spent += work_units
        if self.max_work is not None and self.work_spent > self.max_work:
            raise BudgetExceededError(
                "work", self.work_spent, self.max_work, site)
        self.check_wall(site)

    def check_wall(self, site: str = "") -> None:
        if self.max_wall_seconds is None:
            return
        spent = self.wall_spent
        if spent > self.max_wall_seconds:
            raise BudgetExceededError(
                "wall_seconds", round(spent, 3), self.max_wall_seconds, site)

    def check_iterations(self, iteration: int, site: str = "") -> None:
        """Enforce the fixed-point iteration cap (used by ``iterate``)."""
        if self.max_iterations is not None and iteration > self.max_iterations:
            raise BudgetExceededError(
                "iterations", iteration, self.max_iterations, site)


# -- fault injection ---------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire at specific invocations of a named site.

    ``fires`` lists 0-based invocation indices of ``site`` (counted over
    the plan's lifetime, across dataflow restarts) at which the fault
    triggers. ``kind`` is ``"raise"`` (raise :class:`InjectedFault`) or
    ``"corrupt"`` (the site applies a site-specific corruption: the work
    meter inflates the recorded units, the checkpoint writer mangles the
    line's checksum, other sites ignore it).
    """

    site: str
    fires: Tuple[int, ...]
    kind: str = "raise"

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{FAULT_SITES}")
        if self.kind not in ("raise", "corrupt"):
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        object.__setattr__(self, "fires", tuple(sorted(set(self.fires))))


class FaultPlan:
    """A deterministic schedule of injected faults.

    Threaded through the work meter, the dataflow driver, and the
    checkpoint writer. Each call to :meth:`fire` increments the site's
    invocation counter; when the counter matches a planned index the fault
    triggers. Plans are reusable only once — counters are not reset.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: List[FaultSpec] = list(specs)
        self._counters: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self.fired: List[Tuple[str, int, str]] = []

    @classmethod
    def single(cls, site: str, at: int, kind: str = "raise") -> "FaultPlan":
        """Plan one fault at invocation ``at`` of ``site``."""
        return cls([FaultSpec(site, (at,), kind)])

    @classmethod
    def seeded(cls, seed: int, site: str, lo: int, hi: int,
               count: int = 1, kind: str = "raise") -> "FaultPlan":
        """Plan ``count`` faults at pseudo-random invocations in [lo, hi).

        The same seed always yields the same plan, so a test that kills a
        run "at a random view" is still exactly reproducible.
        """
        if hi - lo < count:
            raise ConfigError(f"range [{lo}, {hi}) too small for {count} "
                              f"faults")
        fires = tuple(random.Random(seed).sample(range(lo, hi), count))
        return cls([FaultSpec(site, fires, kind)])

    def fire(self, site: str, context: str = "") -> Optional[FaultSpec]:
        """Advance ``site``'s counter; trigger a planned fault if due.

        Raise-kind faults raise :class:`InjectedFault`; corrupt-kind faults
        are returned to the caller, which applies the site-specific
        corruption. Returns ``None`` when nothing fires.
        """
        invocation = self._counters[site]
        self._counters[site] = invocation + 1
        for spec in self.specs:
            if spec.site == site and invocation in spec.fires:
                self.fired.append((site, invocation, spec.kind))
                if spec.kind == "raise":
                    raise InjectedFault(site, invocation, context)
                return spec
        return None

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        return self._counters[site]


# -- retry policy ------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Bounded per-view retries with exponential backoff and jitter.

    The executor gives the view's planned strategy ``max_retries`` retries
    (each on a freshly rebuilt dataflow); if a differential view keeps
    failing it *degrades* to a from-scratch run of just that view, which
    again gets ``max_retries`` retries. The serving layer reuses the same
    policy for per-request recompute retries.

    The base delay grows exponentially (``backoff_seconds`` scaled by
    ``backoff_factor`` per further retry, capped by ``max_delay_seconds``);
    ``jitter_seconds`` adds a uniformly drawn extra delay from a private
    RNG seeded with ``jitter_seed`` — two policies constructed with the
    same seed produce the *same* delay sequence, so backoff behaviour is
    exactly reproducible in tests. ``sleep`` and the RNG are injectable so
    tests never sleep real wall-clock.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    jitter_seconds: float = 0.0
    jitter_seed: int = 0
    max_delay_seconds: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.jitter_seconds < 0:
            raise ConfigError(
                f"jitter_seconds must be >= 0, got {self.jitter_seconds}")
        if self.max_delay_seconds is not None and self.max_delay_seconds <= 0:
            raise ConfigError(
                f"max_delay_seconds must be positive, got "
                f"{self.max_delay_seconds}")
        self._rng = random.Random(self.jitter_seed)

    def base_delay(self, retry_number: int) -> float:
        """Deterministic exponential component before jitter (1-based)."""
        if retry_number <= 1 or self.backoff_factor <= 0:
            return self.backoff_seconds
        return self.backoff_seconds * self.backoff_factor ** (retry_number - 1)

    def delay_before(self, retry_number: int) -> float:
        """Full delay before the ``retry_number``-th retry (1-based).

        Draws from the policy's private seeded RNG when jitter is
        configured, so consecutive calls advance the jitter sequence
        deterministically.
        """
        delay = self.base_delay(retry_number)
        if self.jitter_seconds > 0:
            delay += self._rng.uniform(0.0, self.jitter_seconds)
        if self.max_delay_seconds is not None:
            delay = min(delay, self.max_delay_seconds)
        return delay

    def pause(self, retry_number: int) -> None:
        delay = self.delay_before(retry_number)
        if delay > 0:
            self.sleep(delay)


# -- record / diff encoding --------------------------------------------------
#
# Dataflow records are nested tuples of JSON scalars ((vertex, value),
# (src, (dst, w)), ...). JSON has no tuple, so tuples are boxed as
# {"t": [...]} — unambiguous because plain dicts never appear in records.


def encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [encode_value(item) for item in value]}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "t" in value:
            return tuple(decode_value(item) for item in value["t"])
        if "l" in value:
            return [decode_value(item) for item in value["l"]]
        raise ValueError(f"unknown encoded value {value!r}")
    return value


def encode_diff(diff: Optional[Dict[Any, int]]) -> Optional[list]:
    if diff is None:
        return None
    return [[encode_value(rec), mult] for rec, mult in diff.items()]


def decode_diff(encoded: Optional[list]) -> Optional[Dict[Any, int]]:
    if encoded is None:
        return None
    return {decode_value(rec): int(mult) for rec, mult in encoded}


# -- the checkpoint journal --------------------------------------------------


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def collection_fingerprint(collection) -> str:
    """A cheap identity for a materialized collection.

    Covers the name, view names, and per-view sizes — enough to reject
    resuming a checkpoint against a different (or re-ordered) collection
    without hashing every edge.
    """
    basis = _canonical({
        "name": collection.name,
        "view_names": list(collection.view_names),
        "view_sizes": list(collection.view_sizes),
        "diff_sizes": list(collection.diff_sizes),
    })
    return _digest(basis)


@dataclass
class CheckpointState:
    """Validated contents of a run checkpoint journal."""

    path: str
    header: dict
    views: List[dict]
    #: True when trailing lines failed to parse or checksum (torn write);
    #: the valid prefix is still usable and resume rewrites the file to it.
    truncated: bool = False

    @property
    def completed_views(self) -> int:
        return len(self.views)

    @property
    def last_view_name(self) -> Optional[str]:
        return self.views[-1]["view_name"] if self.views else None

    def is_complete(self) -> bool:
        total = self.header.get("num_views")
        return total is not None and self.completed_views >= total


def load_checkpoint(path: PathLike) -> Optional[CheckpointState]:
    """Read and verify a checkpoint journal.

    Returns ``None`` when the file does not exist (a run that died before
    its first write). Stops at the first corrupt or torn line and marks the
    state ``truncated`` — everything before it is checksummed and safe.
    Raises :class:`CheckpointError` when even the header is unusable or the
    surviving records are not a contiguous prefix of views.
    """
    path = Path(path)
    if not path.exists():
        return None
    header: Optional[dict] = None
    views: List[dict] = []
    truncated = False
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                envelope = json.loads(line)
                record = envelope["record"]
                if envelope["sha256"] != _digest(_canonical(record)):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError):
                truncated = True
                break
            if record.get("type") == "header":
                if header is not None:
                    raise CheckpointError(
                        f"duplicate checkpoint header in {path}")
                header = record
            elif record.get("type") == "view":
                views.append(record)
            else:
                raise CheckpointError(
                    f"unknown checkpoint record type "
                    f"{record.get('type')!r} in {path}")
    if header is None:
        if truncated or not views:
            # Nothing trustworthy at all: treat as no checkpoint.
            return None
        raise CheckpointError(f"checkpoint {path} has no header")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {header.get('version')!r} "
            f"in {path}")
    for expected, record in enumerate(views):
        if record.get("index") != expected:
            raise CheckpointError(
                f"checkpoint {path} is not a contiguous prefix: expected "
                f"view {expected}, found {record.get('index')!r}")
    return CheckpointState(str(path), header, views, truncated)


class CheckpointWriter:
    """Appends checksummed records to a run checkpoint journal.

    Every record is one line ``{"sha256": ..., "record": ...}``; the hash
    covers the canonical JSON of the record so torn or bit-flipped lines
    are detected on load. Lines are flushed eagerly — a killed process
    loses at most the line being written.
    """

    def __init__(self, path: PathLike, fault_plan: Optional[FaultPlan] = None):
        self.path = Path(path)
        self.fault_plan = fault_plan
        self._handle = None

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def fresh(cls, path: PathLike, header: dict,
              fault_plan: Optional[FaultPlan] = None) -> "CheckpointWriter":
        """Start a new journal, replacing any previous file atomically."""
        writer = cls(path, fault_plan)
        header = dict(header, type="header", version=CHECKPOINT_VERSION)
        tmp = writer.path.with_name(writer.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(writer._line_for(header), encoding="utf-8")
        os.replace(tmp, writer.path)
        writer._handle = writer.path.open("a", encoding="utf-8")
        return writer

    @classmethod
    def resume(cls, path: PathLike, state: CheckpointState,
               fault_plan: Optional[FaultPlan] = None) -> "CheckpointWriter":
        """Continue an existing journal.

        Rewrites the file to its validated prefix first (dropping a torn
        tail), so appended records always follow intact lines.
        """
        writer = cls(path, fault_plan)
        tmp = writer.path.with_name(writer.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(writer._line_for(state.header))
            for record in state.views:
                handle.write(writer._line_for(record))
        os.replace(tmp, writer.path)
        writer._handle = writer.path.open("a", encoding="utf-8")
        return writer

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- writing -------------------------------------------------------------

    def _line_for(self, record: dict) -> str:
        return json.dumps(
            {"sha256": _digest(_canonical(record)), "record": record}) + "\n"

    def append_view(self, record: dict) -> None:
        """Append one completed-view record (the crash-durable unit)."""
        if self._handle is None:
            raise CheckpointError(f"checkpoint writer for {self.path} is "
                                  f"closed")
        record = dict(record, type="view")
        line = self._line_for(record)
        if self.fault_plan is not None:
            try:
                spec = self.fault_plan.fire(
                    "checkpoint", context=str(self.path))
            except InjectedFault:
                # Simulate a torn write: half the line lands on disk and
                # the process dies mid-append.
                cut = max(1, len(line) // 2)
                self._handle.write(line[:cut])
                self._handle.flush()
                raise
            if spec is not None and spec.kind == "corrupt":
                # Mangle the checksum: the line lands on disk but fails
                # verification, exactly like a bit flip.
                line = line.replace('"sha256": "', '"sha256": "00', 1)
        self._handle.write(line)
        self._handle.flush()


__all__ = [
    "CHECKPOINT_VERSION",
    "FAULT_SITES",
    "CheckpointState",
    "CheckpointWriter",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RunBudget",
    "collection_fingerprint",
    "decode_diff",
    "decode_value",
    "encode_diff",
    "encode_value",
    "load_checkpoint",
]
