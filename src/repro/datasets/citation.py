"""Paper-citations-like graph (paper dataset "PC", Semantic Scholar).

Nodes are papers with two properties — publication ``year`` (1936-2020,
publication volume growing over time) and ``authors`` count — and edges
cite strictly older (or same-year) papers, making the graph a near-DAG
exactly like a real citation network. The paper's Csl / Cex-sh-sl / Caut
collections window on these two node properties.
"""

from __future__ import annotations

import random

from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema

YEAR_MIN = 1936
YEAR_MAX = 2020


def citations_like(num_nodes: int = 400, num_edges: int = 1600,
                   seed: int = 0, max_authors: int = 30) -> PropertyGraph:
    """Generate the PC analogue."""
    rng = random.Random(seed)
    graph = PropertyGraph(
        "citations",
        node_schema=Schema({"year": PropertyType.INT,
                            "authors": PropertyType.INT}),
        edge_schema=Schema(),
    )
    span = YEAR_MAX - YEAR_MIN
    years = []
    for node in range(num_nodes):
        # Quadratic skew: publication volume grows over the decades.
        year = YEAR_MIN + int(span * (rng.random() ** 0.5))
        authors = 1 + min(max_authors - 1, int(rng.expovariate(1 / 4.0)))
        graph.add_node(node, {"year": year, "authors": authors})
        years.append(year)
    order = sorted(range(num_nodes), key=lambda v: (years[v], v))
    rank = {v: i for i, v in enumerate(order)}
    seen = set()
    added = 0
    attempts = 0
    while added < num_edges and attempts < 60 * num_edges:
        attempts += 1
        src = rng.randrange(num_nodes)
        if rank[src] == 0:
            continue
        # Cite a paper older than (or contemporaneous with) the source,
        # biased toward recent work.
        older_rank = int(rank[src] * (rng.random() ** 0.3))
        dst = order[older_rank]
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        graph.add_edge(src, dst)
        added += 1
    return graph
