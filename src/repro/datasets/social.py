"""Large social-network analogues (paper datasets "TW" and "Orkut").

``social_like`` generates a heavy-tailed directed social graph. With
``with_attributes=True`` it adds the §7.6 scalability experiment's
properties: per-user ``city``/``state``/``country`` locations and a
per-edge ``affinity`` level (1=low, 2=medium, 3=high), from which the
9-view collection "same city/state/country x affinity >= low/med/high" is
defined.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.datasets.synthetic import random_edge_pairs
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema
from repro.gvdl.ast import And, Comparison, Literal, Predicate, PropRef

CITIES_PER_STATE = 3
STATES_PER_COUNTRY = 2


def social_like(num_nodes: int = 400, num_edges: int = 2400, seed: int = 0,
                with_attributes: bool = False,
                num_countries: int = 2,
                name: str = "social") -> PropertyGraph:
    """Generate the TW/Orkut analogue."""
    rng = random.Random(seed)
    if with_attributes:
        node_schema = Schema({
            "city": PropertyType.STRING,
            "state": PropertyType.STRING,
            "country": PropertyType.STRING,
        })
        edge_schema = Schema({"affinity": PropertyType.INT})
    else:
        node_schema = Schema()
        edge_schema = Schema()
    graph = PropertyGraph(name, node_schema=node_schema,
                          edge_schema=edge_schema)
    num_states = num_countries * STATES_PER_COUNTRY
    num_cities = num_states * CITIES_PER_STATE
    for node in range(num_nodes):
        if with_attributes:
            city = rng.randrange(num_cities)
            state = city // CITIES_PER_STATE
            country = state // STATES_PER_COUNTRY
            graph.add_node(node, {
                "city": f"city{city}",
                "state": f"state{state}",
                "country": f"country{country}",
            })
        else:
            graph.add_node(node)
    for src, dst in random_edge_pairs(num_nodes, num_edges, seed=seed,
                                      rng=rng):
        if with_attributes:
            graph.add_edge(src, dst, {"affinity": rng.randrange(1, 4)})
        else:
            graph.add_edge(src, dst)
    return graph


def locality_affinity_views() -> List[Tuple[str, Predicate]]:
    """The §7.6 9-view collection: same-location x minimum affinity."""
    views = []
    for scope in ("city", "state", "country"):
        for level, label in ((1, "low"), (2, "medium"), (3, "high")):
            predicate: Predicate = And((
                Comparison(PropRef("src", scope), "=", PropRef("dst", scope)),
                Comparison(PropRef("edge", "affinity"), ">=", Literal(level)),
            ))
            views.append((f"{scope}-{label}", predicate))
    return views
