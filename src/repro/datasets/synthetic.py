"""Core random-graph primitives shared by the dataset generators."""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple


def random_edge_pairs(num_nodes: int, num_edges: int, seed: int,
                      preferential: float = 0.6,
                      rng: Optional[random.Random] = None
                      ) -> List[Tuple[int, int]]:
    """Generate a simple directed graph with a heavy-tailed degree profile.

    With probability ``preferential`` the destination of a new edge is drawn
    from the endpoint history (a Yule-Simon-style rich-get-richer process,
    giving the power-law-ish degrees of social networks); otherwise both
    endpoints are uniform. Self-loops and duplicates are rejected.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ValueError(f"{num_edges} edges exceed the simple-graph "
                         f"maximum {max_edges}")
    rng = rng or random.Random(seed)
    seen: Set[Tuple[int, int]] = set()
    edges: List[Tuple[int, int]] = []
    endpoint_pool: List[int] = []
    attempts = 0
    max_attempts = 50 * num_edges + 1000
    while len(edges) < num_edges:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                "edge sampling failed to converge; lower the density")
        src = rng.randrange(num_nodes)
        if endpoint_pool and rng.random() < preferential:
            dst = endpoint_pool[rng.randrange(len(endpoint_pool))]
        else:
            dst = rng.randrange(num_nodes)
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        edges.append((src, dst))
        endpoint_pool.append(dst)
        endpoint_pool.append(src)
    return edges


def zipf_sizes(total: int, buckets: int, rng: random.Random,
               exponent: float = 1.2) -> List[int]:
    """Split ``total`` items into ``buckets`` Zipf-ish decreasing sizes."""
    weights = [1.0 / (i + 1) ** exponent for i in range(buckets)]
    norm = sum(weights)
    sizes = [max(1, int(total * w / norm)) for w in weights]
    # Fix rounding drift.
    drift = total - sum(sizes)
    index = 0
    while drift != 0:
        step = 1 if drift > 0 else -1
        if sizes[index % buckets] + step >= 1:
            sizes[index % buckets] += step
            drift -= step
        index += 1
    return sizes
