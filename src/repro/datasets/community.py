"""Ground-truth-community graphs (paper datasets "LJ" and "WTC").

A planted-partition graph: communities with Zipf-distributed sizes, dense
intra-community edges, sparse background edges. Nodes may belong to several
communities (as in Com-LiveJournal / Wiki-Topcats). Membership in community
``i`` is exposed as the boolean node property ``c<i>`` so the perturbation
view collections of §7.4 — "remove each k-combination of the N largest
communities" — are expressible as GVDL predicates over node properties.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Tuple

from repro.datasets.synthetic import zipf_sizes
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema
from repro.gvdl.ast import BoolLiteral, Comparison, Literal, Not, Or, Predicate, PropRef


def community_graph(num_nodes: int = 300, num_communities: int = 10,
                    intra_edges: int = 1200, background_edges: int = 300,
                    seed: int = 0, overlap: float = 0.2,
                    name: str = "community") -> PropertyGraph:
    """Generate a community graph with boolean membership properties."""
    rng = random.Random(seed)
    schema = Schema({f"c{i}": PropertyType.BOOL
                     for i in range(num_communities)})
    graph = PropertyGraph(name, node_schema=schema, edge_schema=Schema())
    sizes = zipf_sizes(num_nodes, num_communities, rng)
    members: List[List[int]] = [[] for _ in range(num_communities)]
    node_comms: List[List[int]] = [[] for _ in range(num_nodes)]
    pool = list(range(num_nodes))
    rng.shuffle(pool)
    cursor = 0
    for comm, size in enumerate(sizes):
        for _ in range(size):
            node = pool[cursor % num_nodes]
            cursor += 1
            members[comm].append(node)
            node_comms[node].append(comm)
    # Overlapping memberships.
    for node in range(num_nodes):
        if rng.random() < overlap:
            extra = rng.randrange(num_communities)
            if extra not in node_comms[node]:
                node_comms[node].append(extra)
                members[extra].append(node)
    for node in range(num_nodes):
        props = {f"c{i}": (i in node_comms[node])
                 for i in range(num_communities)}
        graph.add_node(node, props)
    seen = set()

    def try_add(u: int, v: int) -> bool:
        if u == v or (u, v) in seen:
            return False
        seen.add((u, v))
        graph.add_edge(u, v)
        return True

    added = 0
    attempts = 0
    while added < intra_edges and attempts < 60 * intra_edges:
        attempts += 1
        comm = rng.randrange(num_communities)
        group = members[comm]
        if len(group) < 2:
            continue
        u, v = rng.sample(group, 2)
        if try_add(u, v):
            added += 1
    added = 0
    attempts = 0
    while added < background_edges and attempts < 60 * background_edges:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if try_add(u, v):
            added += 1
    return graph


def community_sizes(graph: PropertyGraph) -> List[Tuple[int, int]]:
    """Return (community index, member count), largest first."""
    counts = {}
    for node in graph.nodes.values():
        for prop, value in node.properties.items():
            if value and prop.startswith("c"):
                idx = int(prop[1:])
                counts[idx] = counts.get(idx, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def removal_predicate(removed: Sequence[int]) -> Predicate:
    """Edge predicate for "remove communities in ``removed``".

    An edge survives iff neither endpoint belongs to any removed community.
    """
    terms = []
    for comm in removed:
        terms.append(Comparison(PropRef("src", f"c{comm}"), "=", Literal(True)))
        terms.append(Comparison(PropRef("dst", f"c{comm}"), "=", Literal(True)))
    if not terms:
        return BoolLiteral(True)
    return Not(Or(tuple(terms)))


def perturbation_views(graph: PropertyGraph, top_n: int,
                       k: int) -> List[Tuple[str, Predicate]]:
    """The §7.4 C_{N,k} collection: one view per k-combination of the
    top-N communities, each removing those k communities."""
    top = [comm for comm, _size in community_sizes(graph)[:top_n]]
    views = []
    for combo in itertools.combinations(top, k):
        name = "drop-" + "-".join(str(c) for c in combo)
        views.append((name, removal_predicate(combo)))
    return views
