"""Dataset statistics: sanity-check that generated graphs look like the
real ones (heavy-tailed degrees, temporal growth, community structure).

Used by the generator test suite and handy for eyeballing a generated
dataset before a long benchmark run::

    from repro.datasets import social_like
    from repro.datasets.stats import describe
    print(describe(social_like(1000, 8000, seed=1)))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.graph.property_graph import PropertyGraph


def degree_histogram(graph: PropertyGraph,
                     direction: str = "out") -> Dict[int, int]:
    """``{degree: vertex count}`` over all vertices (including degree 0)."""
    degree: Dict[int, int] = {node: 0 for node in graph.nodes}
    for edge in graph.edges:
        if direction in ("out", "both"):
            degree[edge.src] += 1
        if direction in ("in", "both"):
            degree[edge.dst] += 1
    histogram: Dict[int, int] = {}
    for value in degree.values():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def powerlaw_alpha_mle(degrees: List[int], d_min: int = 1) -> float:
    """Continuous MLE for the power-law exponent (Clauset et al. 2009).

    ``alpha = 1 + n / Σ ln(d / d_min)`` over degrees >= d_min. Social
    networks typically land in [1.5, 3.5]; Erdős–Rényi graphs come out
    much larger (their tail decays faster than any power law).
    """
    tail = [d for d in degrees if d >= d_min]
    if len(tail) < 2:
        raise ValueError("not enough tail degrees for an MLE fit")
    log_sum = sum(math.log(d / (d_min - 0.5)) for d in tail)
    return 1.0 + len(tail) / log_sum


def gini_coefficient(values: List[int]) -> float:
    """Inequality of a non-negative distribution (0 = uniform).

    Heavy-tailed degree distributions have high Gini (> ~0.4); uniform
    random graphs sit much lower.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    return (n + 1 - 2 * weighted / total) / n


@dataclass
class GraphDescription:
    name: str
    num_nodes: int
    num_edges: int
    max_out_degree: int
    mean_out_degree: float
    degree_gini: float
    reciprocity: float

    def render(self) -> str:
        return (f"{self.name}: |V|={self.num_nodes} |E|={self.num_edges} "
                f"deg(mean={self.mean_out_degree:.1f}, "
                f"max={self.max_out_degree}, gini={self.degree_gini:.2f}) "
                f"reciprocity={self.reciprocity:.2f}")


def reciprocity(graph: PropertyGraph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if not graph.edges:
        return 0.0
    present = {(edge.src, edge.dst) for edge in graph.edges}
    mutual = sum(1 for src, dst in present if (dst, src) in present)
    return mutual / len(present)


def describe(graph: PropertyGraph) -> GraphDescription:
    """One-line structural summary of a graph."""
    out_degree: Dict[int, int] = {node: 0 for node in graph.nodes}
    for edge in graph.edges:
        out_degree[edge.src] += 1
    degrees = list(out_degree.values())
    return GraphDescription(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_out_degree=max(degrees) if degrees else 0,
        mean_out_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        degree_gini=gini_coefficient(degrees),
        reciprocity=reciprocity(graph),
    )
