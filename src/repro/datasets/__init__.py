"""Seeded synthetic datasets shaped like the paper's evaluation graphs.

The paper evaluates on Stack Overflow (temporal), a Semantic Scholar
citation graph, Com-LiveJournal and Wiki-Topcats (ground-truth
communities), Twitter and Orkut (large social networks). Those datasets are
multi-GB downloads; these generators reproduce their *property structure*
at engine-appropriate scale so every experiment's view-collection
definitions translate verbatim (see DESIGN.md §2.2).

All generators are deterministic in their ``seed``.
"""

from repro.datasets.citation import citations_like
from repro.datasets.community import community_graph
from repro.datasets.social import social_like
from repro.datasets.synthetic import random_edge_pairs
from repro.datasets.temporal import stackoverflow_like

__all__ = [
    "citations_like",
    "community_graph",
    "social_like",
    "random_edge_pairs",
    "stackoverflow_like",
]
