"""Stack-Overflow-like temporal graph (paper dataset "SO").

Every edge carries a unix creation timestamp ``ts``. Timestamps span the
real dataset's range (May 2008 onward) with activity growing over time —
later windows contain more edges, which is what makes the paper's expanding
and sliding window collections behave the way they do.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.datasets.synthetic import random_edge_pairs
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema

#: 2008-05-01; the Stack Overflow dataset starts around here.
EPOCH_START = 1209600000
SECONDS_PER_DAY = 86400
SECONDS_PER_YEAR = 365 * SECONDS_PER_DAY


def ts_after(days: float = 0, years: float = 0) -> int:
    """A unix timestamp ``days``/``years`` after the dataset start."""
    return int(EPOCH_START + days * SECONDS_PER_DAY + years * SECONDS_PER_YEAR)


def stackoverflow_like(num_nodes: int = 300, num_edges: int = 1500,
                       seed: int = 0, span_years: float = 8.0,
                       growth: float = 2.0) -> PropertyGraph:
    """Generate the SO analogue.

    ``growth`` > 1 skews timestamps toward the end of the span (activity
    grows over the site's life): ``ts = start + span * u^(1/growth)`` for
    uniform ``u``.
    """
    rng = random.Random(seed)
    graph = PropertyGraph(
        "stackoverflow",
        node_schema=Schema(),
        edge_schema=Schema({"ts": PropertyType.INT}),
    )
    for node in range(num_nodes):
        graph.add_node(node)
    span = span_years * SECONDS_PER_YEAR
    pairs = random_edge_pairs(num_nodes, num_edges, seed=seed, rng=rng)
    stamped = []
    for src, dst in pairs:
        offset = span * (rng.random() ** (1.0 / growth))
        stamped.append((int(EPOCH_START + offset), src, dst))
    # The SNAP file is time-ordered; keep that property.
    stamped.sort()
    for ts, src, dst in stamped:
        graph.add_edge(src, dst, {"ts": ts})
    return graph


def window_bounds(start_years: float, end_years: float) -> Tuple[int, int]:
    """Unix-timestamp bounds for a [start, end) window in years-from-epoch."""
    return ts_after(years=start_years), ts_after(years=end_years)
