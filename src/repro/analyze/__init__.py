"""Static plan analysis and UDF determinism linting.

``analyze(dataflow)`` runs two read-only passes over a built dataflow —
the plan analyzer (:mod:`repro.analyze.plan`, rules ``GS-P1xx``) and the
UDF linter (:mod:`repro.analyze.udf`, rules ``GS-U2xx``) — and returns an
:class:`AnalysisReport`. Two further passes are opt-in:
``analyze(dataflow, concurrency=True)`` adds the shard-safety pass for
the process backend (:mod:`repro.analyze.shard`, rules ``GS-S3xx``) and
``analyze(dataflow, stream=True)`` adds the stream-maintainability pass
for continuous queries (:mod:`repro.analyze.stream`, rules ``GS-M4xx``).
Strict mode (``Graphsurge.run_analytics(..., strict=True)`` /
``run --strict``) raises :class:`repro.errors.AnalysisError` on any ERROR
finding before the epoch driver runs a single view; strict process-backend
runs include the shard-safety pass, and ``StreamEngine.register`` runs the
stream pass on every continuous query before seeding it.

The full rule catalog (rationale, examples, suppression) is in
``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.analyze.plan import PLAN_RULES, PlanWalk, check_plan
from repro.analyze.report import AnalysisReport, Finding, Rule, Severity
from repro.analyze.shard import SHARD_RULES, check_shard
from repro.analyze.stream import STREAM_RULES, check_stream
from repro.analyze.udf import UDF_RULES, check_udfs

#: Every rule the analyzer knows, by id.
RULES: Dict[str, Rule] = {**PLAN_RULES, **UDF_RULES, **SHARD_RULES,
                          **STREAM_RULES}

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "RULES",
    "Severity",
    "analyze",
    "analyze_computation",
]


def analyze(dataflow, ignore: Iterable[str] = (), *,
            concurrency: bool = False,
            stream: bool = False) -> AnalysisReport:
    """Statically analyze a built dataflow.

    Every pass only reads the operator DAG — no traces, schedules, or
    meter state are touched, so a subsequent run's ``total_work`` and
    ``parallel_time`` are byte-identical to an unanalyzed run's.

    ``concurrency`` adds the process-backend shard-safety pass
    (``GS-S3xx``); ``stream`` adds the continuous-query maintainability
    pass (``GS-M4xx``). ``ignore`` drops whole rules by id (the per-line
    escape hatch is a ``# analyze: ignore[rule-id]`` comment in the UDF
    source).
    """
    ignored = set(ignore)
    unknown = ignored.difference(RULES)
    if unknown:
        raise ValueError(
            f"unknown analyzer rule id(s): {', '.join(sorted(unknown))}")
    report = AnalysisReport()
    walk = PlanWalk(dataflow)
    plan_findings, report.operators_scanned = check_plan(dataflow, walk)
    udf_findings, report.udfs_scanned, report.udfs_skipped, \
        report.suppressed = check_udfs(dataflow, walk.path)
    all_findings = plan_findings + udf_findings
    if concurrency:
        shard_findings, _probed = check_shard(dataflow, walk)
        all_findings += shard_findings
    if stream:
        stream_findings, _sites = check_stream(dataflow, walk)
        all_findings += stream_findings
    for finding in all_findings:
        if finding.rule in ignored:
            report.suppressed += 1
        else:
            report.findings.append(finding)
    return report


def analyze_computation(computation, workers: int = 1,
                        ignore: Iterable[str] = (), *,
                        concurrency: bool = False,
                        stream: bool = False) -> AnalysisReport:
    """Build a fresh dataflow for ``computation`` and analyze it.

    Mirrors the executor's build (an ``edges`` input, the computation's
    ``build``, a root-scope capture) so the analyzed plan is exactly the
    plan a run would execute.
    """
    from repro.differential.dataflow import Dataflow

    dataflow = Dataflow(workers=workers)
    edges = dataflow.new_input("edges")
    result = computation.build(dataflow, edges)
    dataflow.capture(result, "results")
    return analyze(dataflow, ignore=ignore, concurrency=concurrency,
                   stream=stream)
