"""Static plan analysis and UDF determinism linting.

``analyze(dataflow)`` runs two read-only passes over a built dataflow —
the plan analyzer (:mod:`repro.analyze.plan`, rules ``GS-P1xx``) and the
UDF linter (:mod:`repro.analyze.udf`, rules ``GS-U2xx``) — and returns an
:class:`AnalysisReport`. Strict mode (``Graphsurge.run_analytics(...,
strict=True)`` / ``run --strict``) raises
:class:`repro.errors.AnalysisError` on any ERROR finding before the epoch
driver runs a single view.

The full rule catalog (rationale, examples, suppression) is in
``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analyze.plan import PLAN_RULES, PlanWalk, check_plan
from repro.analyze.report import AnalysisReport, Finding, Rule, Severity
from repro.analyze.udf import UDF_RULES, check_udfs

#: Every rule the analyzer knows, by id.
RULES: Dict[str, Rule] = {**PLAN_RULES, **UDF_RULES}

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "RULES",
    "Severity",
    "analyze",
    "analyze_computation",
]


def analyze(dataflow, ignore: Iterable[str] = ()) -> AnalysisReport:
    """Statically analyze a built dataflow.

    Both passes only read the operator DAG — no traces, schedules, or
    meter state are touched, so a subsequent run's ``total_work`` and
    ``parallel_time`` are byte-identical to an unanalyzed run's.

    ``ignore`` drops whole rules by id (the per-line escape hatch is a
    ``# analyze: ignore[rule-id]`` comment in the UDF source).
    """
    ignored = set(ignore)
    unknown = ignored.difference(RULES)
    if unknown:
        raise ValueError(
            f"unknown analyzer rule id(s): {', '.join(sorted(unknown))}")
    report = AnalysisReport()
    walk = PlanWalk(dataflow)
    plan_findings, report.operators_scanned = check_plan(dataflow, walk)
    udf_findings, report.udfs_scanned, report.udfs_skipped, \
        report.suppressed = check_udfs(dataflow, walk.path)
    for finding in plan_findings + udf_findings:
        if finding.rule in ignored:
            report.suppressed += 1
        else:
            report.findings.append(finding)
    return report


def analyze_computation(computation, workers: int = 1,
                        ignore: Iterable[str] = ()) -> AnalysisReport:
    """Build a fresh dataflow for ``computation`` and analyze it.

    Mirrors the executor's build (an ``edges`` input, the computation's
    ``build``, a root-scope capture) so the analyzed plan is exactly the
    plan a run would execute.
    """
    from repro.differential.dataflow import Dataflow

    dataflow = Dataflow(workers=workers)
    edges = dataflow.new_input("edges")
    result = computation.build(dataflow, edges)
    dataflow.capture(result, "results")
    return analyze(dataflow, ignore=ignore)
