"""Pass 4 — stream-maintainability analysis for continuous queries.

A plan registered as a continuous query (:meth:`StreamEngine.register`,
``Graphsurge.stream``, the daemon's ``POST /stream``) is never torn down:
every ingested batch becomes one more epoch, retractions flow through the
whole dataflow, and :meth:`Dataflow.compact` is the only thing bounding
resident state. Plan shapes that are fine for a bounded view collection
become hazards on an unbounded stream — negative differences that cannot
cancel (window expiry retractions drive accumulated multiplicities
negative at snapshot time), retraction waves re-entering ``iterate``
scopes every epoch, and Python-side state that ``compact`` can never
reach.

This pass is opt-in (``analyze(dataflow, stream=True)``);
``StreamEngine.register`` runs it on every query before seeding it and
rejects ERROR-severity plans with an :class:`~repro.errors.AnalysisError`
(HTTP 400 through the daemon). Rule ids are ``GS-M4xx``; the catalog with
examples lives in ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.plan import PlanWalk, _is_cancelling_negate
from repro.analyze.report import Finding, Rule, Severity
from repro.analyze.shard import (
    _MUTABLE_CONTAINERS,
    _CODE_TYPES,
    _callable_node,
    closure_bindings,
)
from repro.analyze.udf import (
    _RawFinding,
    _callable_name,
    _check_external_mutation,
    _suppressed_rules,
    udf_sites,
)
from repro.differential.operators.iterate import IterateOp
from repro.differential.operators.linear import NegateOp

STREAM_RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("GS-M401", Severity.ERROR, "non-cancelling negate inside iterate",
         "A negate inside an iterate scope is not the record-for-record "
         "cancelling antijoin idiom. Under continuous maintenance every "
         "ingested retraction re-enters the loop as a negative wave that "
         "nothing pairs off, so per-epoch maintenance work grows with "
         "history instead of the batch."),
    Rule("GS-M402", Severity.ERROR, "non-cancelling negate in a maintained "
         "plan",
         "A root-scope negate without cancelling structure lets window "
         "expiry retractions drive accumulated multiplicities negative: "
         "the per-epoch snapshot of a maintained query is an accumulation "
         "and a bare negative multiplicity there is unrepresentable."),
    Rule("GS-M403", Severity.ERROR, "inspect tap accumulates Python-side "
         "state",
         "An inspect callback mutates a closed-over container. That "
         "buffer lives outside every trace, so Dataflow.compact can never "
         "reclaim it: on an unbounded stream it grows with the epoch "
         "count forever. (The batch analyzer exempts inspect taps; a "
         "maintained plan cannot.)"),
    Rule("GS-M404", Severity.WARNING, "nested iterate scopes under "
         "maintenance",
         "An iterate inside an iterate multiplies retraction waves: each "
         "churn batch re-enters the outer fixed point, and every outer "
         "round replays the inner one. Maintenance cost compounds with "
         "nesting depth."),
    Rule("GS-M405", Severity.WARNING, "maintained UDF captures a mutable "
         "container",
         "A callable in a maintained plan closes over a list/dict/set. "
         "Even read-only, the capture is a liability on a stream: the "
         "plan outlives the scope that built the container, and any later "
         "mutation changes results for already-ingested epochs, which "
         "retractions can then never cancel."),
)}


def _finding(rule_id: str, where: str, message: str,
             hint: str = "") -> Finding:
    rule = STREAM_RULES[rule_id]
    return Finding(rule=rule.id, severity=rule.severity, operator=where,
                   message=message, hint=hint)


def check_stream(dataflow,
                 walk: Optional[PlanWalk] = None
                 ) -> Tuple[List[Finding], int]:
    """Run every stream-maintainability rule; returns (findings, sites)."""
    if walk is None:
        walk = PlanWalk(dataflow)
    findings: List[Finding] = []
    for op in walk.ops:
        if isinstance(op, NegateOp):
            if _is_cancelling_negate(op):
                continue
            if op.scope.depth >= 2:
                findings.append(_finding(
                    "GS-M401", walk.path(op),
                    f"negate {op.name}#{op.index} sits inside iterate "
                    f"scope depth {op.scope.depth} with no cancelling "
                    f"structure; streamed retractions re-enter the loop "
                    f"as unpaired negative waves every epoch",
                    hint="use the antijoin idiom "
                         "A.concat(A.semijoin(K).negate()) whose "
                         "negatives cancel record-for-record, or move "
                         "the subtraction out of the loop"))
            else:
                findings.append(_finding(
                    "GS-M402", walk.path(op),
                    f"negate {op.name}#{op.index} has no cancelling "
                    f"structure; window-expiry retractions on a "
                    f"maintained stream can drive the accumulated "
                    f"snapshot negative",
                    hint="pair the negate with the stream it subtracts "
                         "from (antijoin idiom) or guard it with a "
                         "reduce before the capture"))
        elif isinstance(op, IterateOp) and op.scope.depth >= 2:
            findings.append(_finding(
                "GS-M404", walk.path(op),
                f"iterate {op.name}#{op.index} is nested at scope depth "
                f"{op.scope.depth}; each churn batch replays the inner "
                f"fixed point once per outer round",
                hint="flatten the loops or accept compounding per-epoch "
                     "maintenance cost"))
    sites = 0
    for op, role, func in udf_sites(dataflow):
        sites += 1
        where = f"{walk.path(op)} udf {_callable_name(func)}"
        if role == "inspect":
            node, lines, base = _callable_node(func)
            if node is None:
                continue
            raw: List[_RawFinding] = []
            for item in _check_external_mutation(node):
                raw.append(_RawFinding(
                    "GS-M403", item.line,
                    f"{item.message}; this buffer is unreachable by "
                    f"Dataflow.compact and grows with the epoch count on "
                    f"an unbounded stream",
                    hint="snapshot through a capture (compactable) "
                         "instead of accumulating in Python"))
            if base != 1:
                for item in raw:
                    item.line -= base - 1
            for item in raw:
                ignore = _suppressed_rules(lines[0]) if lines else set()
                if 1 <= item.line <= len(lines):
                    ignore |= _suppressed_rules(lines[item.line - 1])
                if item.rule in ignore:
                    continue
                findings.append(_finding(item.rule, where, item.message,
                                         item.hint))
            continue
        node, lines, _base = _callable_node(func)
        def_ignores = _suppressed_rules(lines[0]) if lines else set()
        if "GS-M405" in def_ignores:
            continue
        for name, value in sorted(closure_bindings(func).items()):
            if isinstance(value, _CODE_TYPES):
                continue
            if isinstance(value, _MUTABLE_CONTAINERS):
                findings.append(_finding(
                    "GS-M405", where,
                    f"captures mutable {type(value).__name__} {name!r} in "
                    f"a maintained plan; later mutation would change "
                    f"results for epochs the stream has already emitted",
                    hint="capture an immutable value (tuple/frozenset) "
                         "instead"))
    return findings, sites
