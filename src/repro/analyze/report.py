"""Findings, severities, and the analysis report.

A :class:`Finding` is one rule violation located at an operator (plan
pass) or a user callable (UDF pass). :class:`AnalysisReport` collects the
findings of one :func:`repro.analyze.analyze` run and renders / serializes
them; :class:`repro.errors.AnalysisError` (raised by strict mode) carries
the report so callers can still inspect everything programmatically.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` — the plan is wrong or nondeterministic: strict mode
      refuses to run it, ``make analyze`` / the CI lint job fail.
    * ``WARNING`` — legal but wasteful or fragile; reported, never fatal.
    * ``INFO`` — observations (e.g. UDF sources the linter could not
      inspect).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: stable id, default severity, catalog text."""

    id: str
    severity: Severity
    title: str
    rationale: str


@dataclass(frozen=True)
class Finding:
    """One rule violation with its location and a fix hint."""

    rule: str
    severity: Severity
    #: Operator path ``root/<loop>/<op>#<index>`` for plan findings, or
    #: ``<op path> udf <callable>`` for UDF findings.
    operator: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = (f"{self.severity.value.upper():7} {self.rule} "
                f"{self.operator}: {self.message}")
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "operator": self.operator,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule=payload["rule"],
            severity=Severity(payload["severity"]),
            operator=payload["operator"],
            message=payload["message"],
            hint=payload.get("hint", ""),
        )


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class AnalysisReport:
    """Everything one analyzer run found, plus coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    #: Operators the plan pass walked.
    operators_scanned: int = 0
    #: User callables the UDF pass inspected.
    udfs_scanned: int = 0
    #: Callables skipped because no source was available (builtins,
    #: C functions, interactively defined lambdas).
    udfs_skipped: int = 0
    #: Findings silenced by ``# analyze: ignore[rule-id]`` comments.
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was recorded."""
        return not self.errors()

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_ORDER[f.severity], f.rule, f.operator))

    def render(self) -> str:
        lines = [
            f"analysis: {self.operators_scanned} operator(s), "
            f"{self.udfs_scanned} UDF(s) inspected"
            + (f", {self.udfs_skipped} UDF(s) without source"
               if self.udfs_skipped else "")
            + (f", {self.suppressed} finding(s) suppressed"
               if self.suppressed else "")
        ]
        if not self.findings:
            lines.append("no findings: the plan is clean")
            return "\n".join(lines)
        errors, warnings = self.errors(), self.warnings()
        lines.append(f"{len(errors)} error(s), {len(warnings)} warning(s), "
                     f"{len(self.findings) - len(errors) - len(warnings)} "
                     f"info")
        for finding in self.sorted_findings():
            lines.append(finding.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "operators_scanned": self.operators_scanned,
            "udfs_scanned": self.udfs_scanned,
            "udfs_skipped": self.udfs_skipped,
            "suppressed": self.suppressed,
            "by_rule": self.by_rule(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)
