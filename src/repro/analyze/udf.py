"""Pass 2 — determinism linting of user callables.

Every callable a dataflow carries (``map``/``flat_map``/``filter``/
``reduce``/``join``/``join_arranged``/``inspect``) is re-run for *every*
view of a collection, and differential computation assumes each re-run of
the same record yields the same output. This pass AST-inspects the
callables (``inspect.getsource`` with graceful fallback — builtins and
REPL-defined lambdas are skipped, not failed) and flags the classic
determinism hazards.

Rule ids are ``GS-U2xx``. Findings can be silenced per callable line with
a ``# analyze: ignore[rule-id]`` comment (comma-separate several ids; the
comment may sit on the offending line or on the callable's ``def``/lambda
line).
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analyze.report import Finding, Rule, Severity
from repro.differential.debug import _scope_ops
from repro.differential.operators.arrange import JoinArrangedOp
from repro.differential.operators.join import JoinOp
from repro.differential.operators.linear import (
    FilterOp,
    FlatMapOp,
    InspectOp,
    MapOp,
)
from repro.differential.operators.reduce import ReduceOp

UDF_RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("GS-U201", Severity.ERROR, "nondeterministic call",
         "The callable consults random numbers, wall-clock time, uuids, or "
         "object identity; re-running it across views (or after a "
         "checkpoint resume) yields different records and corrupts the "
         "difference traces."),
    Rule("GS-U202", Severity.WARNING, "iteration over unordered content",
         "Iterating a set or dict view bakes hash-table order into the "
         "output; fine for order-insensitive aggregates, hazardous when "
         "the order reaches emitted records."),
    Rule("GS-U203", Severity.WARNING, "mutable default argument",
         "A list/dict/set default is created once and shared across every "
         "invocation; state leaks between records and between views."),
    Rule("GS-U204", Severity.ERROR, "write to closed-over or global state",
         "The callable mutates state outside its own frame; operator "
         "re-runs are no longer pure functions of their input and replay "
         "(checkpoint resume, fuzzing, worker resharding) diverges."),
    Rule("GS-U205", Severity.WARNING, "hash() of a value",
         "hash() of str/bytes varies across interpreter runs unless "
         "PYTHONHASHSEED is pinned; use repro.timely.stable_hash for "
         "anything that reaches records or sharding."),
)}

#: Module roots whose every attribute call is a nondeterminism hazard.
_NONDET_MODULES = {"random", "time", "uuid", "secrets"}
#: (module root, attribute) pairs that are hazards on otherwise-fine roots.
_NONDET_MODULE_ATTRS = {
    ("os", "urandom"), ("os", "getpid"), ("os", "times"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
#: Method names that are hazards whatever the receiver (rng.choice(...)).
_NONDET_METHODS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "getrandbits", "randbytes",
    "uuid1", "uuid4", "now", "utcnow", "perf_counter", "monotonic",
    "time_ns", "perf_counter_ns", "monotonic_ns",
}
#: Bare-name calls that are hazards.
_NONDET_NAMES = {"id"}

#: Consumers for which unordered iteration is harmless: they are
#: order-insensitive by definition.
_ORDER_INSENSITIVE = {
    "sum", "min", "max", "len", "any", "all", "sorted", "set", "frozenset",
    "dict", "Counter",
}

#: Receiver methods that mutate their object in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse", "write",
    "writelines", "appendleft", "extendleft",
}

_IGNORE_RE = re.compile(r"#\s*analyze:\s*ignore\[([A-Za-z0-9_,\-\s]+)\]")


@dataclass
class _RawFinding:
    rule: str
    line: int  # 1-based within the callable's source block
    message: str
    hint: str = ""


def udf_sites(dataflow) -> List[Tuple[object, str, object]]:
    """Every (operator, role, callable) the dataflow carries."""
    sites: List[Tuple[object, str, object]] = []
    ops = sorted((op for ops in _scope_ops(dataflow).values() for op in ops),
                 key=lambda op: op.index)
    for op in ops:
        if isinstance(op, (MapOp, FlatMapOp)):
            sites.append((op, "map", op.f))
        elif isinstance(op, FilterOp):
            sites.append((op, "filter", op.predicate))
        elif isinstance(op, ReduceOp):
            sites.append((op, "reduce", op.logic))
        elif isinstance(op, (JoinOp, JoinArrangedOp)):
            sites.append((op, "join", op.f))
        elif isinstance(op, InspectOp):
            sites.append((op, "inspect", op.callback))
    return sites


def _callable_name(func) -> str:
    name = getattr(func, "__qualname__", None) or getattr(
        func, "__name__", None) or repr(func)
    # Qualnames of nested lambdas get noisy; keep the tail.
    return name.split(".")[-1] if name.endswith("<lambda>") else name


def _find_node(tree: ast.Module, func, base: int) -> Optional[ast.AST]:
    """Locate the AST node of ``func`` inside its (dedented) source block.

    ``inspect.getsource`` returns the whole statement, which for lambdas
    may contain several lambdas (e.g. two arguments on one line); the
    line offset within the block and the argument count disambiguate.
    ``base`` is the AST line number of the block's first source line (2
    when the block was wrapped to make it parse, else 1).
    """
    code = func.__code__
    if func.__name__ != "<lambda>":
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == func.__name__:
                return node
        return None
    candidates = [node for node in ast.walk(tree)
                  if isinstance(node, ast.Lambda)]
    if len(candidates) <= 1:
        return candidates[0] if candidates else None
    try:
        src_start = inspect.getsourcelines(func)[1]
    except (OSError, TypeError):
        src_start = code.co_firstlineno
    offset = code.co_firstlineno - src_start
    on_line = [n for n in candidates if n.lineno - base == offset]
    pool = on_line or candidates
    by_args = [n for n in pool if len(n.args.args) == code.co_argcount]
    pool = by_args or pool
    if len(pool) > 1:
        # Several lambdas share the line and the arity ("clean, dirty =
        # lambda r: ..., lambda r: ..."): compile each candidate and match
        # its code signature (exact bytecode varies with the enclosing
        # compile context) against the live function.
        import types

        def signature(c: types.CodeType):
            return (c.co_names, c.co_varnames,
                    tuple(const for const in c.co_consts
                          if not isinstance(const, types.CodeType)))

        for candidate in pool:
            try:
                compiled = compile(ast.Expression(body=candidate),
                                   "<analyze>", "eval")
            except (SyntaxError, TypeError, ValueError):
                continue
            inner = next((const for const in compiled.co_consts
                          if isinstance(const, types.CodeType)), None)
            if inner is not None and signature(inner) == signature(code):
                return candidate
    return pool[0]


def _parse_block(source: str) -> Tuple[Optional[ast.Module], int]:
    """Parse a ``getsource`` block, tolerating clause fragments.

    ``getsource`` of a lambda that starts on a continuation line returns
    just that line, complete with the enclosing call's unbalanced trailing
    closers (``lambda rec: f(rec)))``). Try the text as-is, then wrapped
    in ``if True:`` (for indented clauses), then with trailing closers
    trimmed off. Returns ``(tree, base)`` where ``base`` is the AST line
    number of the block's first source line; ``(None, 1)`` when nothing
    parses.
    """
    text = source
    while True:
        try:
            return ast.parse(text), 1
        except SyntaxError:
            pass
        try:
            return (ast.parse(f"if True:\n{textwrap.indent(text, '    ')}"),
                    2)
        except SyntaxError:
            pass
        stripped = text.rstrip()
        if not stripped or stripped[-1] not in ")]},;":
            return None, 1
        text = stripped[:-1]


def lint_callable(func, role: str) -> Tuple[List[_RawFinding], List[str],
                                            bool]:
    """Lint one callable.

    Returns ``(raw findings, source lines, skipped)``; suppression
    comments are *not* applied here (the caller needs the line text).
    """
    func = inspect.unwrap(func)
    if not (inspect.isfunction(func) or inspect.ismethod(func)):
        return [], [], True
    if inspect.ismethod(func):
        func = func.__func__
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return [], [], True
    tree, base = _parse_block(source)
    if tree is None:
        return [], source.splitlines(), True
    node = _find_node(tree, func, base)
    if node is None:
        return [], source.splitlines(), True
    findings = list(_lint_node(node, role))
    if base != 1:
        # Wrapped parse shifted AST line numbers; map them back onto the
        # source block so suppression comments line up.
        for item in findings:
            item.line -= base - 1
    return findings, source.splitlines(), False


def _lint_node(node: ast.AST, role: str) -> Iterable[_RawFinding]:
    yield from _check_nondet_calls(node, role)
    yield from _check_unordered_iteration(node)
    yield from _check_mutable_defaults(node)
    if role != "inspect":
        # Inspect taps exist to observe — mutating a closed-over buffer
        # is their whole point.
        yield from _check_external_mutation(node)


# -- GS-U201 / GS-U205 ------------------------------------------------------


def _dotted_root(expr: ast.AST) -> Optional[Tuple[str, str]]:
    """For ``a.b.c(...)`` return ``("a", "c")``; None when not dotted."""
    if not isinstance(expr, ast.Attribute):
        return None
    attr = expr.attr
    value = expr.value
    while isinstance(value, ast.Attribute):
        value = value.value
    if isinstance(value, ast.Name):
        return value.id, attr
    return None, attr  # type: ignore[return-value]


def _check_nondet_calls(node: ast.AST,
                        role: str = "") -> Iterable[_RawFinding]:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name):
            if func.id in _NONDET_NAMES:
                if role == "inspect":
                    # Inspect taps never emit records, so an id() there
                    # (debug labels, object-identity logging) cannot
                    # corrupt difference traces.
                    continue
                yield _RawFinding(
                    "GS-U201", sub.lineno,
                    f"call to {func.id}() — object identity differs "
                    f"between runs",
                    hint="derive the value from record contents instead")
            elif func.id == "hash":
                yield _RawFinding(
                    "GS-U205", sub.lineno,
                    "call to hash() — str/bytes hashes vary per "
                    "interpreter run",
                    hint="use repro.timely.stable_hash(...)")
            continue
        rooted = _dotted_root(func)
        if rooted is None:
            continue
        root, attr = rooted
        if root in _NONDET_MODULES:
            yield _RawFinding(
                "GS-U201", sub.lineno,
                f"call to {root}.{attr}() — nondeterministic between "
                f"runs",
                hint="precompute outside the dataflow or derive from "
                     "record contents")
        elif (root, attr) in _NONDET_MODULE_ATTRS:
            yield _RawFinding(
                "GS-U201", sub.lineno,
                f"call to {root}.{attr}() — nondeterministic between "
                f"runs",
                hint="precompute outside the dataflow or derive from "
                     "record contents")
        elif attr in _NONDET_METHODS:
            yield _RawFinding(
                "GS-U201", sub.lineno,
                f"call to .{attr}() — a random/clock source by "
                f"convention",
                hint="seeded randomness must stay outside operator "
                     "callables")


# -- GS-U202 ----------------------------------------------------------------


def _is_unordered_expr(expr: ast.AST) -> Optional[str]:
    """Describe ``expr`` when its iteration order is hash-dependent."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) and func.attr in {
                "values", "keys", "items"}:
            return f".{func.attr}()"
        if isinstance(func, ast.Name) and func.id in {"list", "tuple",
                                                      "iter"}:
            if expr.args:
                inner = _is_unordered_expr(expr.args[0])
                if inner is not None:
                    return f"{func.id}({inner})"
    return None


def _order_insensitive_calls(node: ast.AST) -> Set[int]:
    """ids of iterable expressions consumed by order-insensitive callables."""
    safe: Set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in _ORDER_INSENSITIVE:
                for arg in sub.args:
                    safe.add(id(arg))
    return safe


def _check_unordered_iteration(node: ast.AST) -> Iterable[_RawFinding]:
    safe = _order_insensitive_calls(node)
    iters: List[ast.AST] = []
    for sub in ast.walk(node):
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            iters.append(sub.iter)
        elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                              ast.GeneratorExp)):
            if id(sub) in safe:
                # The whole comprehension feeds an order-insensitive
                # consumer (sum(... for ... in d.items())): harmless.
                continue
            for gen in sub.generators:
                iters.append(gen.iter)
    for expr in iters:
        if id(expr) in safe:
            continue
        described = _is_unordered_expr(expr)
        if described is not None:
            yield _RawFinding(
                "GS-U202", expr.lineno,
                f"iterates {described}, whose order is hash-dependent",
                hint="wrap the iterable in sorted(...) when order can "
                     "reach the output, or silence with "
                     "# analyze: ignore[GS-U202] when it cannot")


# -- GS-U203 ----------------------------------------------------------------


def _is_mutable_literal(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"list", "dict", "set", "bytearray",
                                "defaultdict", "deque"}
    return False


def _check_mutable_defaults(node: ast.AST) -> Iterable[_RawFinding]:
    for sub in ast.walk(node):
        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        args = sub.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if _is_mutable_literal(default):
                yield _RawFinding(
                    "GS-U203", default.lineno,
                    "mutable default argument is created once and shared "
                    "across every invocation",
                    hint="default to None and create the container in "
                         "the body")


# -- GS-U204 ----------------------------------------------------------------


def _own_names(node: ast.AST) -> Set[str]:
    """Names bound inside the callable (params + assignments + loops)."""
    names: Set[str] = set()
    args = node.args if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.Lambda)) else None
    if args is not None:
        for arg in (list(args.args) + list(args.posonlyargs)
                    + list(args.kwonlyargs)):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(sub.name)
        elif isinstance(sub, ast.comprehension):
            for name_node in ast.walk(sub.target):
                if isinstance(name_node, ast.Name):
                    names.add(name_node.id)
    return names


def _root_name(expr: ast.AST) -> Optional[str]:
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _check_external_mutation(node: ast.AST) -> Iterable[_RawFinding]:
    own = _own_names(node)
    declared: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            declared.update(sub.names)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared:
                        yield _RawFinding(
                            "GS-U204", sub.lineno,
                            f"assigns {target.id!r}, declared "
                            f"global/nonlocal",
                            hint="thread state through records or use an "
                                 "inspect() tap")
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root is not None and root not in own:
                        yield _RawFinding(
                            "GS-U204", sub.lineno,
                            f"writes into closed-over or global object "
                            f"{root!r}",
                            hint="operator callables must be pure; "
                                 "collect side outputs with inspect()")
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MUTATING_METHODS:
                root = _root_name(func.value)
                if root is not None and root not in own:
                    yield _RawFinding(
                        "GS-U204", sub.lineno,
                        f"calls {root}.{func.attr}(...) on closed-over "
                        f"or global object {root!r}",
                        hint="operator callables must be pure; collect "
                             "side outputs with inspect()")


# -- suppression + assembly -------------------------------------------------


def _suppressed_rules(line: str) -> Set[str]:
    match = _IGNORE_RE.search(line)
    if not match:
        return set()
    return {part.strip() for part in match.group(1).split(",") if
            part.strip()}


def check_udfs(dataflow, path_of) -> Tuple[List[Finding], int, int, int]:
    """Lint every callable; returns (findings, scanned, skipped,
    suppressed)."""
    findings: List[Finding] = []
    scanned = skipped = suppressed = 0
    # Keyed by (code identity, role): linting is role-dependent (inspect
    # taps are exempt from the mutation and id() rules).
    cache: Dict[Tuple[int, str],
                Tuple[List[_RawFinding], List[str], bool]] = {}
    for op, role, func in udf_sites(dataflow):
        code = getattr(func, "__code__", None)
        key = (id(code) if code is not None else id(func), role)
        if key in cache:
            raw, lines, was_skipped = cache[key]
        else:
            raw, lines, was_skipped = lint_callable(func, role)
            cache[key] = (raw, lines, was_skipped)
        if was_skipped:
            skipped += 1
            continue
        scanned += 1
        where = f"{path_of(op)} udf {_callable_name(func)}"
        for item in raw:
            ignore = set()
            if 1 <= item.line <= len(lines):
                ignore |= _suppressed_rules(lines[item.line - 1])
            if lines:
                ignore |= _suppressed_rules(lines[0])
            if item.rule in ignore:
                suppressed += 1
                continue
            rule = UDF_RULES[item.rule]
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, operator=where,
                message=item.message, hint=item.hint))
    return findings, scanned, skipped, suppressed
