"""Plan corpora for batch analysis (``make analyze``, the CI lint job).

Two sources of plans:

* every built-in algorithm with deterministic default parameters — the
  analyzer turned loose on our own dataflows as a self-check;
* fuzzer-derived plans: :mod:`repro.verify.generator` cases provide the
  vertex universes from which each algorithm's ``sample_params`` draws
  randomized parameters (sources, k values, vertex pairs), so the corpus
  covers the same parameter space the differential-oracle fuzzer runs.

Everything is seeded: the same seed yields the same corpus.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from repro.analyze import AnalysisReport, analyze_computation


def default_computations(seed: int = 0) -> List[Tuple[str, object]]:
    """One (label, computation) per built-in algorithm.

    Parameters are sampled with a fixed rng over a small vertex universe,
    so parameterized algorithms (bfs source, k-core k, mpsp pairs) get
    concrete, reproducible values.
    """
    from repro.verify.oracles import ALGORITHMS

    rng = random.Random(seed)
    vertices = list(range(8))
    out: List[Tuple[str, object]] = []
    for name in sorted(ALGORITHMS):
        spec = ALGORITHMS[name]
        params = spec.sample_params(rng, vertices)
        out.append((name, spec.computation(params)))
    return out


def generated_computations(seed: int,
                           count: int) -> Iterator[Tuple[str, object]]:
    """``count`` fuzzer-derived (label, computation) plans.

    Case ``i`` generates a collection from seed ``seed + i`` (exercising
    the churn/window/GVDL grammars), takes its vertex universe, and
    samples parameters for one algorithm (rotating through the registry)
    from the same seeded rng — the plans the fuzzer would execute.
    """
    from repro.verify.generator import generate_case
    from repro.verify.oracles import ALGORITHMS

    names = sorted(ALGORITHMS)
    for i in range(count):
        case_seed = seed + i
        case = generate_case(case_seed)
        rng = random.Random(case_seed)
        name = names[i % len(names)]
        spec = ALGORITHMS[name]
        params = spec.sample_params(rng, case.vertices())
        label = f"gen-{case_seed}-{case.kind}-{name}"
        yield label, spec.computation(params)


def analyze_corpus(seed: int = 0, generated: int = 0,
                   workers: int = 1) -> Dict[str, AnalysisReport]:
    """Analyze the default corpus plus ``generated`` fuzzer-derived plans.

    Returns ``{label: report}`` in a stable order (defaults first, then
    generated plans by index).
    """
    reports: Dict[str, AnalysisReport] = {}
    for label, computation in default_computations(seed):
        reports[label] = analyze_computation(computation, workers=workers)
    for label, computation in generated_computations(seed, generated):
        reports[label] = analyze_computation(computation, workers=workers)
    return reports
