"""Pass 1 — structural analysis of a built dataflow plan.

Walks the operator DAG and scope tree of a :class:`Dataflow` (the same
``_ops_by_scope`` map :mod:`repro.differential.debug` renders) and reports
rule violations as :class:`repro.analyze.report.Finding` objects.

The walk is strictly read-only: it never touches traces, schedules, or the
work meter, so running it leaves ``total_work``/``parallel_time`` of a
subsequent execution byte-identical to an unanalyzed run.

Rule ids are ``GS-P1xx`` (plan rules); the UDF linter owns ``GS-U2xx``.
The catalog with rationale and examples lives in ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.report import Finding, Rule, Severity
from repro.differential.debug import _scope_ops
from repro.differential.operators.arrange import (
    ArrangeEnterOp,
    ArrangeOp,
    JoinArrangedOp,
)
from repro.differential.operators.base import Operator
from repro.differential.operators.io import CaptureOp, InputOp
from repro.differential.operators.iterate import (
    EnterOp,
    IterateOp,
    VariableOp,
    _LeaveTap,
)
from repro.differential.operators.join import JoinOp
from repro.differential.operators.linear import (
    ConcatOp,
    FilterOp,
    InspectOp,
    NegateOp,
)
from repro.differential.operators.reduce import ReduceOp

PLAN_RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("GS-P101", Severity.ERROR, "scope-crossing edge",
         "A collection flows between different iterate scopes without an "
         "enter; the consumer would see timestamps of the wrong arity and "
         "the scope drivers would never flush it at the right times."),
    Rule("GS-P102", Severity.ERROR, "unguarded negate inside iterate",
         "A negate (or antijoin half) feeds the loop variable with no "
         "reduce-family guard (distinct/threshold/min/...) on the path; "
         "negative multiplicities can oscillate and the fixed point may "
         "never be reached."),
    Rule("GS-P103", Severity.WARNING, "redundant arrangement",
         "The same upstream is arranged (or the same arrangement entered "
         "into the same scope) more than once; arrangements exist to be "
         "shared — each extra one stores a full private copy of the "
         "trace."),
    Rule("GS-P104", Severity.WARNING, "dangling operator",
         "The operator's output can never reach a capture or inspect "
         "sink; it consumes work and memory every epoch for nothing."),
    Rule("GS-P105", Severity.ERROR, "scope-depth / timestamp-arity mismatch",
         "An enter skips nesting levels, a loop part sits at the wrong "
         "depth, or a sink would record timestamps of the wrong arity; "
         "the product-order timestamps could not line up."),
    Rule("GS-P106", Severity.WARNING, "join inputs keyed from different sources",
         "Both join inputs have key-preserving provenance from distinct "
         "inputs; the equi-join silently assumes the two key spaces "
         "coincide."),
    Rule("GS-P107", Severity.WARNING, "join re-indexes an arranged input",
         "A plain join reads an already-arranged stream and builds a "
         "private trace next to the shared one; join_arranged would reuse "
         "the existing index."),
)}

_ENTER_TYPES = (EnterOp, ArrangeEnterOp)

#: Reduce-family operators break negative-multiplicity feedback loops: their
#: output is recomputed from the accumulated (consolidated) input per key,
#: so sign oscillation upstream cannot leak past them.
_GUARD_TYPES = (ReduceOp,)


def _finding(rule_id: str, operator: str, message: str,
             hint: str = "") -> Finding:
    rule = PLAN_RULES[rule_id]
    return Finding(rule=rule.id, severity=rule.severity, operator=operator,
                   message=message, hint=hint)


class PlanWalk:
    """One read-only traversal context over a built dataflow."""

    def __init__(self, dataflow):
        self.dataflow = dataflow
        by_scope = _scope_ops(dataflow)
        self.ops: List[Operator] = sorted(
            (op for ops in by_scope.values() for op in ops),
            key=lambda op: op.index)
        self._labels: Dict[int, str] = {id(dataflow.root): "root"}
        for op in self.ops:
            if isinstance(op, IterateOp):
                self._labels[id(op.child_scope)] = op.name
        anonymous = 0
        for scope in by_scope:
            if id(scope) not in self._labels:
                self._labels[id(scope)] = f"scope{scope.depth}.{anonymous}"
                anonymous += 1

    def path(self, op: Operator) -> str:
        """``root/<loop>/<op.name>#<index>`` — stable operator address."""
        parts: List[str] = []
        scope = op.scope
        while scope is not None:
            parts.append(self._labels.get(id(scope), f"scope{scope.depth}"))
            scope = scope.parent
        parts.reverse()
        return "/".join(parts) + f"/{op.name}#{op.index}"


def check_plan(dataflow,
               walk: Optional[PlanWalk] = None) -> Tuple[List[Finding], int]:
    """Run every plan rule; returns (findings, operators scanned)."""
    if walk is None:
        walk = PlanWalk(dataflow)
    findings: List[Finding] = []
    findings.extend(_check_scope_edges(walk))
    findings.extend(_check_scope_shape(walk))
    findings.extend(_check_unguarded_negate(walk))
    findings.extend(_check_redundant_arrange(walk))
    findings.extend(_check_dangling(walk))
    findings.extend(_check_join_keys(walk))
    findings.extend(_check_rearranged_join(walk))
    return findings, len(walk.ops)


# -- GS-P101 / GS-P105: scope structure ------------------------------------


def _check_scope_edges(walk: PlanWalk):
    """Every DAG edge must stay in one scope or be a direct-child enter."""
    for op in walk.ops:
        is_enter = isinstance(op, _ENTER_TYPES)
        for down, _port in op.downstream:
            if down.scope is op.scope:
                if is_enter:
                    # An enter appends one timestamp coordinate; a consumer
                    # at the same depth would see times one too long.
                    yield _finding(
                        "GS-P105", walk.path(down),
                        f"enter {op.name}#{op.index} feeds "
                        f"{down.name}#{down.index} in its own scope "
                        f"(depth {down.scope.depth}); entered timestamps "
                        f"carry {down.scope.depth + 1} coordinates",
                        hint="consume the entered collection inside the "
                             "child scope it targets")
                continue
            if is_enter:
                if down.scope.parent is op.scope:
                    continue
                yield _finding(
                    "GS-P105", walk.path(down),
                    f"enter {op.name}#{op.index} (depth {op.scope.depth}) "
                    f"feeds {down.name}#{down.index} at depth "
                    f"{down.scope.depth}; an enter moves exactly one "
                    f"nesting level",
                    hint="chain one enter per level (Scope.enter and "
                         "Arrangement.enter do this for you)")
                continue
            yield _finding(
                "GS-P101", walk.path(down),
                f"{op.name}#{op.index} (depth {op.scope.depth}) feeds "
                f"{down.name}#{down.index} (depth {down.scope.depth}) "
                f"across a scope boundary without enter/leave",
                hint="bring the collection in with scope.enter(...) or "
                     "take the iterate result out through its leave "
                     "stream")


def _check_scope_shape(walk: PlanWalk):
    """Loop parts and sinks must sit at the right scope depth."""
    root = walk.dataflow.root
    for op in walk.ops:
        if isinstance(op, IterateOp):
            if op.leave_tap is None:
                yield _finding(
                    "GS-P105", walk.path(op),
                    f"iterate {op.name}#{op.index} was never finalized "
                    f"(no body wired back into its variable)",
                    hint="build loops with Collection.iterate(body)")
            if op.child_scope.parent is not op.scope:
                yield _finding(
                    "GS-P105", walk.path(op),
                    f"iterate {op.name}#{op.index} at depth "
                    f"{op.scope.depth} drives a scope at depth "
                    f"{op.child_scope.depth}; the loop scope must be its "
                    f"direct child")
        elif isinstance(op, VariableOp):
            if op.scope.depth < 2:
                yield _finding(
                    "GS-P105", walk.path(op),
                    f"loop variable {op.name}#{op.index} sits at the root "
                    f"scope; variables only make sense inside an iterate")
        elif isinstance(op, CaptureOp):
            if op.scope is not root:
                yield _finding(
                    "GS-P105", walk.path(op),
                    f"capture {op.name}#{op.index} sits at depth "
                    f"{op.scope.depth}; it would record "
                    f"{op.scope.depth}-coordinate timestamps the epoch "
                    f"driver (which probes 1-coordinate epochs) never "
                    f"exposes",
                    hint="capture the iterate's leave stream at the root "
                         "scope instead")
        elif isinstance(op, InputOp):
            if op.scope is not root:
                yield _finding(
                    "GS-P105", walk.path(op),
                    f"input {op.name}#{op.index} sits at depth "
                    f"{op.scope.depth}; Dataflow.step feeds 1-coordinate "
                    f"epochs at the root scope only")


# -- GS-P102: divergence risk ----------------------------------------------


def _is_cancelling_negate(op: NegateOp) -> bool:
    """Recognize the antijoin idiom ``A.concat(A.semijoin(K).negate())``.

    The negated stream is a (semi)join whose port-0 input also feeds the
    same concat, so every negative difference cancels against a positive
    one record-for-record — the concat output never goes negative and the
    feedback loop stays safe without a reduce guard.
    """
    source = op.inputs[0]
    if not isinstance(source, (JoinOp, JoinArrangedOp)):
        return False
    base = source.inputs[0]
    if not op.downstream:
        return False
    for down, _port in op.downstream:
        if not isinstance(down, ConcatOp):
            return False
        if not any(other is base for other in down.inputs if other is not op):
            return False
    return True


def _check_unguarded_negate(walk: PlanWalk):
    """A negate inside a loop must not reach the variable unguarded."""
    for op in walk.ops:
        if not isinstance(op, NegateOp) or op.scope.depth < 2:
            continue
        if _is_cancelling_negate(op):
            continue
        # Walk downstream; reduce-family operators consolidate per key and
        # stop sign oscillation, so the search does not continue past them.
        seen = {op.index}
        stack: List[Operator] = [op]
        variable: Optional[Operator] = None
        while stack and variable is None:
            current = stack.pop()
            for down, _port in current.downstream:
                if down.index in seen:
                    continue
                seen.add(down.index)
                if isinstance(down, VariableOp) and down.scope is op.scope:
                    variable = down
                    break
                if isinstance(down, _GUARD_TYPES):
                    continue
                stack.append(down)
        if variable is not None:
            yield _finding(
                "GS-P102", walk.path(op),
                f"negate {op.name}#{op.index} reaches loop variable "
                f"{variable.name}#{variable.index} with no reduce-family "
                f"guard on the feedback path; negative multiplicities can "
                f"oscillate across iterations and the loop may never "
                f"converge",
                hint="pass the feedback through distinct()/threshold()/"
                     "min_by_key() (any reduce), or use the antijoin "
                     "idiom A.concat(A.semijoin(K).negate()) whose "
                     "negatives cancel exactly")


# -- GS-P103: arrangement sharing ------------------------------------------


def _check_redundant_arrange(walk: PlanWalk):
    groups: Dict[Tuple[int, ...], List[Operator]] = {}
    for op in walk.ops:
        if isinstance(op, ArrangeEnterOp):
            # One enter per (arrangement, target scope); the target is
            # where its consumers live.
            targets = sorted({id(down.scope) for down, _ in op.downstream})
            groups.setdefault(
                ("enter", id(op.inputs[0]), *targets), []).append(op)
        elif isinstance(op, ArrangeOp):
            source = op.inputs[0]
            if isinstance(source, (ArrangeOp, ArrangeEnterOp)):
                yield _finding(
                    "GS-P103", walk.path(op),
                    f"arrange {op.name}#{op.index} re-indexes the already "
                    f"arranged stream {source.name}#{source.index}",
                    hint="reuse the existing Arrangement handle instead "
                         "of arranging its output again")
            groups.setdefault(
                ("arrange", id(source), id(op.scope)), []).append(op)
    for key, ops in groups.items():
        if len(ops) < 2:
            continue
        first = ops[0]
        for extra in ops[1:]:
            what = ("entered into the same scope"
                    if key[0] == "enter" else "arranged in the same scope")
            yield _finding(
                "GS-P103", walk.path(extra),
                f"{extra.name}#{extra.index} duplicates "
                f"{first.name}#{first.index}: the same upstream is "
                f"{what} more than once",
                hint="arrange once and share the Arrangement handle "
                     "across consumers (PR 2's shared-arrangement rule)")


# -- GS-P104: dead operators -----------------------------------------------


def _check_dangling(walk: PlanWalk):
    reaches_sink = set()
    stack = [op for op in walk.ops
             if isinstance(op, (CaptureOp, InspectOp))]
    for sink in stack:
        reaches_sink.add(sink.index)
    while stack:
        current = stack.pop()
        upstream = list(current.inputs)
        if isinstance(current, IterateOp) and current.leave_tap is not None:
            # The tap has no downstream edge — its buffered diffs flow out
            # through IterateOp.flush — so reachability needs this
            # virtual leave edge.
            upstream.append(current.leave_tap)
        for up in upstream:
            if up.index not in reaches_sink:
                reaches_sink.add(up.index)
                stack.append(up)
    for op in walk.ops:
        if op.index in reaches_sink:
            continue
        if isinstance(op, InputOp):
            message = (f"input {op.name}#{op.index} feeds no path to a "
                       f"capture or inspect sink")
            hint = "drop the input or wire it into the computation"
        else:
            message = (f"{op.name}#{op.index} has no path to a capture or "
                       f"inspect sink; it does metered work every epoch "
                       f"that nothing observes")
            hint = ("capture the collection, or delete the dead operator "
                    "chain")
        yield _finding("GS-P104", walk.path(op), message, hint=hint)


# -- GS-P106 / GS-P107: join hygiene ---------------------------------------


def _key_origin(op: Operator,
                memo: Dict[int, Optional[Tuple[str, str]]]):
    """Best-effort provenance of an operator's record keys.

    Returns ``("input", name)`` when the keys demonstrably come from one
    named input through key-preserving operators, else ``None`` (unknown —
    maps and joins may rekey arbitrarily, loop variables mix provenance).
    """
    if op.index in memo:
        return memo[op.index]
    memo[op.index] = None  # cycle guard (variable feedback edges)
    origin: Optional[Tuple[str, str]] = None
    if isinstance(op, InputOp):
        origin = ("input", op.name)
    elif isinstance(op, (FilterOp, NegateOp, InspectOp, ReduceOp, CaptureOp,
                         EnterOp, ArrangeEnterOp, ArrangeOp, _LeaveTap)):
        origin = _key_origin(op.inputs[0], memo)
    elif isinstance(op, ConcatOp):
        origins = {_key_origin(up, memo) for up in op.inputs}
        if len(origins) == 1:
            origin = origins.pop()
    # MapOp/FlatMapOp/JoinOp/JoinArrangedOp may rekey; VariableOp/IterateOp
    # mix loop-carried state: all stay unknown.
    memo[op.index] = origin
    return origin


def _check_join_keys(walk: PlanWalk):
    memo: Dict[int, Optional[Tuple[str, str]]] = {}
    for op in walk.ops:
        if not isinstance(op, (JoinOp, JoinArrangedOp)):
            continue
        left = _key_origin(op.inputs[0], memo)
        right = _key_origin(op.inputs[1], memo)
        if left is not None and right is not None and left != right:
            yield _finding(
                "GS-P106", walk.path(op),
                f"join {op.name}#{op.index} pairs records keyed from "
                f"{left[1]!r} against records keyed from {right[1]!r}; "
                f"the equi-join assumes both key spaces coincide",
                hint="rekey one side explicitly (map) if the key spaces "
                     "really do line up, or join within one input")


def _check_rearranged_join(walk: PlanWalk):
    for op in walk.ops:
        if not isinstance(op, JoinOp):
            continue
        for port, up in enumerate(op.inputs):
            if isinstance(up, (ArrangeOp, ArrangeEnterOp)):
                yield _finding(
                    "GS-P107", walk.path(op),
                    f"join {op.name}#{op.index} reads the arranged stream "
                    f"{up.name}#{up.index} on port {port} and builds a "
                    f"private trace next to the shared one",
                    hint="use join_arranged(arrangement) to reuse the "
                         "shared index")
