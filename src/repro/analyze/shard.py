"""Pass 3 — shard-safety analysis for the process backend.

The process backend (``backend="process"``, :mod:`repro.timely.cluster`)
forks W workers that inherit the dataflow graph — including every user
closure — and then runs keyed kernels (``reduce`` logic, ``join`` result
builders) on the key's owning worker. That execution model has hazards the
inline backend never exposes: closure state snapshotted at fork time and
mutated independently per process, process-local objects (locks, file
handles, RNG instances, sockets) duplicated by the fork, ``hash()``-derived
record keys that differ across worker interpreters, and captured state
whose pickle failure would otherwise surface mid-superstep as a
:class:`~repro.errors.WorkerFailedError`.

This pass detects those statically at build time. It is opt-in
(``analyze(dataflow, concurrency=True)``); strict process-backend runs
enable it automatically so a doomed plan is refused before any epoch
executes. Rule ids are ``GS-S3xx``; the catalog with examples lives in
``docs/analysis.md``. Findings on a callable can be silenced with the
usual ``# analyze: ignore[rule-id]`` comment on the offending line or the
callable's ``def``/lambda line.
"""

from __future__ import annotations

import ast
import inspect
import io
import pickle
import socket
import textwrap
import types
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analyze.plan import PlanWalk
from repro.analyze.report import Finding, Rule, Severity
from repro.analyze.udf import (
    _RawFinding,
    _callable_name,
    _check_external_mutation,
    _dotted_root,
    _find_node,
    _parse_block,
    _suppressed_rules,
    udf_sites,
)

SHARD_RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("GS-S301", Severity.ERROR, "closure captures a process-local object",
         "The callable closes over a lock, open file, socket, RNG instance, "
         "live generator, or thread/process handle. Forked workers duplicate "
         "the object: a lock held at fork time deadlocks the child, file "
         "descriptors share offsets, and RNG streams diverge per process."),
    Rule("GS-S302", Severity.ERROR, "shippable kernel mutates captured state",
         "A reduce/join kernel writes to closed-over or global state. On "
         "backend='process' the kernel runs in a forked worker whose copy "
         "of that state silently diverges from the coordinator's (and from "
         "the inline backend), so the two backends stop being "
         "observationally identical."),
    Rule("GS-S303", Severity.ERROR, "hash()-derived record in a keyed role",
         "A record-producing callable derives output from hash(). Worker "
         "processes are forked from one interpreter, but str/bytes hashes "
         "still differ between coordinator restarts and across "
         "PYTHONHASHSEED, so shard routing and join keys are not stable."),
    Rule("GS-S304", Severity.ERROR, "captured kernel state fails pickling",
         "A value captured by a reduce/join kernel does not survive a "
         "pickle round-trip. The exchange channels pickle every frame; "
         "state that cannot pickle is the canonical predictor of a "
         "mid-superstep WorkerFailedError — surface it at build time "
         "instead."),
    Rule("GS-S305", Severity.WARNING, "shippable kernel reads captured "
         "mutable container",
         "A reduce/join kernel reads a closed-over or global list/dict/"
         "set. The worker's copy is a fork-time snapshot: any coordinator-"
         "side mutation after the first superstep is invisible to the "
         "kernel, unlike on the inline backend."),
    Rule("GS-S306", Severity.WARNING, "I/O from a shippable kernel",
         "A reduce/join kernel performs console or file I/O. On "
         "backend='process' it executes inside forked workers, so output "
         "interleaves nondeterministically across processes and never "
         "reaches the coordinator's streams."),
)}

#: Roles whose callables execute on the key's owning worker process (the
#: operators ``Dataflow._start_cluster`` registers with the cluster).
_SHIPPABLE_ROLES = {"reduce", "join"}

#: Roles whose callables produce records (and therefore keys) that reach
#: sharding and joins downstream. ``filter`` only drops records, so a
#: hash() in a predicate cannot leak into keys.
_KEYED_ROLES = {"map", "reduce", "join"}

#: Binding values that are code, not data: fork ships them by inheritance
#: and they never cross an exchange channel, so the pickle probe and the
#: container checks skip them.
_CODE_TYPES = (types.FunctionType, types.BuiltinFunctionType,
               types.MethodType, types.ModuleType, type)

_MUTABLE_CONTAINERS = (list, dict, set, bytearray)

_IO_NAMES = {"print", "open", "input"}


def _referenced_names(code: types.CodeType) -> Iterable[str]:
    """Global/attribute names referenced by ``code`` and every code object
    nested inside it (comprehensions and lambdas compile to nested code
    objects on Python < 3.12)."""
    yield from code.co_names
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            yield from _referenced_names(const)


def closure_bindings(func) -> Dict[str, Any]:
    """``name -> captured value`` for a callable's closure cells, argument
    defaults, and referenced module globals.

    Best-effort and read-only; non-function callables (builtins, partials
    without ``__code__``) yield an empty mapping.
    """
    func = inspect.unwrap(func)
    if inspect.ismethod(func):
        func = func.__func__
    if not inspect.isfunction(func):
        return {}
    bindings: Dict[str, Any] = {}
    code = func.__code__
    for name, cell in zip(code.co_freevars, func.__closure__ or ()):
        try:
            bindings[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue
    defaults = func.__defaults__ or ()
    if defaults:
        arg_names = code.co_varnames[:code.co_argcount]
        for name, value in zip(arg_names[-len(defaults):], defaults):
            bindings.setdefault(name, value)
    for name, value in (func.__kwdefaults__ or {}).items():
        bindings.setdefault(name, value)
    module_globals = getattr(func, "__globals__", None) or {}
    for name in _referenced_names(code):
        if name in module_globals and name not in bindings:
            bindings[name] = module_globals[name]
    return bindings


def cell_and_default_bindings(func) -> Dict[str, Any]:
    """Like :func:`closure_bindings` but without module globals — the
    state that is genuinely private to the closure (the pickle probe's
    scope: globals are re-imported by the fork, not carried)."""
    func = inspect.unwrap(func)
    if inspect.ismethod(func):
        func = func.__func__
    if not inspect.isfunction(func):
        return {}
    bindings: Dict[str, Any] = {}
    code = func.__code__
    for name, cell in zip(code.co_freevars, func.__closure__ or ()):
        try:
            bindings[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue
    defaults = func.__defaults__ or ()
    if defaults:
        arg_names = code.co_varnames[:code.co_argcount]
        for name, value in zip(arg_names[-len(defaults):], defaults):
            bindings.setdefault(name, value)
    for name, value in (func.__kwdefaults__ or {}).items():
        bindings.setdefault(name, value)
    return bindings


def _process_local(value: Any) -> Optional[str]:
    """Describe ``value`` when duplicating it across forked processes is a
    hazard; ``None`` when it is fork-safe."""
    import random
    import threading

    if isinstance(value, io.IOBase):
        return "an open file handle"
    if isinstance(value, socket.socket):
        return "an open socket"
    if isinstance(value, random.Random):
        return "an RNG instance"
    if isinstance(value, (types.GeneratorType, types.CoroutineType,
                          types.AsyncGeneratorType)):
        return "a live generator"
    if isinstance(value, threading.Thread):
        return "a thread handle"
    if isinstance(value, threading.local):
        return "thread-local storage"
    if isinstance(value, (threading.Event, threading.Condition,
                          threading.Semaphore, threading.Barrier)):
        return f"a threading.{type(value).__name__}"
    module = type(value).__module__ or ""
    if module == "_thread":
        return f"a {type(value).__name__} (lock)"
    if module.split(".")[0] == "multiprocessing":
        return f"a multiprocessing {type(value).__name__}"
    return None


def _callable_node(func) -> Tuple[Optional[ast.AST], List[str], int]:
    """The AST node of ``func`` plus its source lines and parse base.

    Mirrors :func:`repro.analyze.udf.lint_callable`'s source recovery;
    ``(None, lines, 1)`` when the source is unavailable or unparsable
    (builtins, REPL lambdas) — skipped, not failed.
    """
    func = inspect.unwrap(func)
    if inspect.ismethod(func):
        func = func.__func__
    if not inspect.isfunction(func):
        return None, [], 1
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None, [], 1
    tree, base = _parse_block(source)
    if tree is None:
        return None, source.splitlines(), 1
    return _find_node(tree, func, base), source.splitlines(), base


def _check_worker_io(node: ast.AST) -> Iterable[_RawFinding]:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        target = sub.func
        if isinstance(target, ast.Name) and target.id in _IO_NAMES:
            yield _RawFinding(
                "GS-S306", sub.lineno,
                f"calls {target.id}() from a shippable kernel; on "
                f"backend='process' this runs inside a forked worker",
                hint="observe with inspect() on the coordinator, or drop "
                     "the I/O")
            continue
        rooted = _dotted_root(target)
        if rooted is not None and rooted[0] == "sys":
            yield _RawFinding(
                "GS-S306", sub.lineno,
                f"calls sys.{rooted[1]}() from a shippable kernel; worker "
                f"processes do not share the coordinator's streams",
                hint="observe with inspect() on the coordinator, or drop "
                     "the I/O")


def _check_hash_keys(node: ast.AST) -> Iterable[_RawFinding]:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "hash"):
            yield _RawFinding(
                "GS-S303", sub.lineno,
                "derives a record from hash(); shard routing and join "
                "keys built from it differ across PYTHONHASHSEED",
                hint="use repro.timely.stable_hash(...) instead")


def _finding(rule_id: str, where: str, message: str,
             hint: str = "") -> Finding:
    rule = SHARD_RULES[rule_id]
    return Finding(rule=rule.id, severity=rule.severity, operator=where,
                   message=message, hint=hint)


def check_shard(dataflow,
                walk: Optional[PlanWalk] = None) -> Tuple[List[Finding], int]:
    """Run every shard-safety rule; returns (findings, kernels probed)."""
    if walk is None:
        walk = PlanWalk(dataflow)
    findings: List[Finding] = []
    probed = 0
    for op, role, func in udf_sites(dataflow):
        where = f"{walk.path(op)} udf {_callable_name(func)}"
        node, lines, base = _callable_node(func)
        def_ignores = _suppressed_rules(lines[0]) if lines else set()

        def emit_runtime(rule_id: str, message: str, hint: str) -> None:
            if rule_id not in def_ignores:
                findings.append(_finding(rule_id, where, message, hint))

        bindings = closure_bindings(func)
        for name, value in sorted(bindings.items()):
            described = _process_local(value)
            if described is not None:
                emit_runtime(
                    "GS-S301",
                    f"captures {described} as {name!r}; forked workers "
                    f"duplicate it and the copies diverge",
                    "create the object inside the callable, or keep it "
                    "out of the dataflow entirely")

        if role in _SHIPPABLE_ROLES:
            probed += 1
            private = cell_and_default_bindings(func)
            for name, value in sorted(private.items()):
                if isinstance(value, _CODE_TYPES):
                    continue
                try:
                    pickle.loads(pickle.dumps(value))
                except Exception as exc:
                    emit_runtime(
                        "GS-S304",
                        f"captured binding {name!r} "
                        f"({type(value).__name__}) fails a pickle "
                        f"round-trip: {exc!r}; a process-backend run "
                        f"would die mid-superstep with WorkerFailedError",
                        "capture plain picklable data, or run this plan "
                        "on backend='inline'")
            for name, value in sorted(bindings.items()):
                if isinstance(value, _CODE_TYPES):
                    continue
                if isinstance(value, _MUTABLE_CONTAINERS):
                    emit_runtime(
                        "GS-S305",
                        f"reads captured mutable "
                        f"{type(value).__name__} {name!r}; workers see a "
                        f"fork-time snapshot that coordinator-side "
                        f"mutations never update",
                        "capture an immutable value (tuple/frozenset) "
                        "computed before the run")

        if node is None:
            continue
        raw: List[_RawFinding] = []
        if role in _SHIPPABLE_ROLES:
            for item in _check_external_mutation(node):
                raw.append(_RawFinding(
                    "GS-S302", item.line,
                    f"{item.message}; on backend='process' this state "
                    f"lives in a forked worker and diverges from the "
                    f"inline backend",
                    hint="thread state through records or reduce over it "
                         "explicitly"))
            raw.extend(_check_worker_io(node))
        if role in _KEYED_ROLES:
            raw.extend(_check_hash_keys(node))
        if base != 1:
            for item in raw:
                item.line -= base - 1
        for item in raw:
            ignore = set(def_ignores)
            if 1 <= item.line <= len(lines):
                ignore |= _suppressed_rules(lines[item.line - 1])
            if item.rule in ignore:
                continue
            findings.append(_finding(item.rule, where, item.message,
                                     item.hint))
    return findings, probed
