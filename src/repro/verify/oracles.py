"""The oracle registry: every dataflow algorithm paired with its
plain-Python reference and a deterministic parameter sampler.

The uniform contract (see :mod:`repro.algorithms.reference`):

* ``spec.factory(**params)`` builds the dataflow computation;
* ``spec.oracle(edges, **params)`` computes the expected ``{key: value}``
  map from a view's edge list;

with the *same* ``params`` dict for both sides, so the fuzz runner can
cross-check any algorithm without algorithm-specific glue.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms import (
    BellmanFord,
    Bfs,
    ClusteringCoefficient,
    CompositeScore,
    KCore,
    KTruss,
    LabelPropagation,
    MaxDegree,
    Mpsp,
    OutDegrees,
    PageRank,
    PersonalizedPageRank,
    Scc,
    Triangles,
    Wcc,
)
from repro.algorithms.reference import (
    reference_bellman_ford,
    reference_bfs,
    reference_clustering,
    reference_composite_score,
    reference_kcore,
    reference_ktruss,
    reference_label_propagation,
    reference_max_degree,
    reference_mpsp,
    reference_out_degrees,
    reference_pagerank,
    reference_personalized_pagerank,
    reference_scc,
    reference_triangles,
    reference_wcc,
    view_edge_list,
)
from repro.core.computation import GraphComputation
from repro.core.resilience import encode_value
from repro.errors import ConfigError, GraphsurgeError


def _no_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {}


def _source_param(rng: random.Random, vertices: Sequence[int]) -> dict:
    # Half the runs exercise the dynamic default (per-view minimum source),
    # half a fixed source that may be absent from some views.
    if not vertices or rng.random() < 0.5:
        return {"source": None}
    return {"source": rng.choice(vertices)}


def _pagerank_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {"iterations": rng.randint(3, 6)}


def _kcore_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {"k": rng.randint(2, 3)}


def _mpsp_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    if len(vertices) < 2:
        return {"pairs": [(0, 1)]}
    pairs = set()
    for _ in range(rng.randint(2, 4)):
        src, dst = rng.sample(vertices, 2)
        pairs.add((src, dst))
    return {"pairs": sorted(pairs)}


def _lpa_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {"rounds": rng.randint(3, 8)}


def _ppr_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    if not vertices:
        return {"seeds": [0], "iterations": rng.randint(3, 6)}
    seeds = set(rng.sample(vertices, min(len(vertices), rng.randint(1, 3))))
    if rng.random() < 0.25:
        # Exercise seed normalization: a seed absent from every view.
        seeds.add(max(vertices) + 7)
    return {"seeds": sorted(seeds), "iterations": rng.randint(3, 6)}


def _ktruss_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {"k": rng.randint(2, 4)}


def _score_params(rng: random.Random, vertices: Sequence[int]) -> dict:
    return {
        "degree_weight": rng.randint(0, 3),
        "triangle_weight": rng.randint(0, 3),
        "rank_weight": rng.randint(0, 3),
        "iterations": rng.randint(2, 5),
    }


@dataclass(frozen=True)
class AlgorithmSpec:
    """One fuzzable algorithm: dataflow factory + oracle + param sampler."""

    name: str
    factory: Callable[..., GraphComputation]
    oracle: Callable[..., Dict[Any, Any]]
    sample_params: Callable[[random.Random, Sequence[int]], dict] = \
        field(default=_no_params)

    def computation(self, params: dict) -> GraphComputation:
        return self.factory(**params)

    def expected(self, triples: List[Tuple[int, int, int]],
                 params: dict) -> Dict[Any, Any]:
        return self.oracle(triples, **params)


#: Every oracle-backed algorithm, keyed by its fuzzer name.
ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec for spec in (
        AlgorithmSpec("wcc", Wcc, reference_wcc),
        AlgorithmSpec("bfs", Bfs, reference_bfs, _source_param),
        AlgorithmSpec("sssp", BellmanFord, reference_bellman_ford,
                      _source_param),
        AlgorithmSpec("pagerank", PageRank, reference_pagerank,
                      _pagerank_params),
        AlgorithmSpec("scc", Scc, reference_scc),
        AlgorithmSpec("kcore", KCore, reference_kcore, _kcore_params),
        AlgorithmSpec("triangles", Triangles, reference_triangles),
        AlgorithmSpec("clustering", ClusteringCoefficient,
                      reference_clustering),
        AlgorithmSpec("degrees", OutDegrees, reference_out_degrees),
        AlgorithmSpec("maxdegree", MaxDegree, reference_max_degree),
        AlgorithmSpec("mpsp", Mpsp, reference_mpsp, _mpsp_params),
        # The community & scoring pack (docs/algorithms.md).
        AlgorithmSpec("labelprop", LabelPropagation,
                      reference_label_propagation, _lpa_params),
        AlgorithmSpec("ppr", PersonalizedPageRank,
                      reference_personalized_pagerank, _ppr_params),
        AlgorithmSpec("ktruss", KTruss, reference_ktruss, _ktruss_params),
        AlgorithmSpec("score", CompositeScore, reference_composite_score,
                      _score_params),
    )
}


def algorithm_names() -> List[str]:
    return sorted(ALGORITHMS)


def resolve_algorithms(names: Optional[Sequence[str]] = None
                       ) -> List[AlgorithmSpec]:
    """Specs for ``names`` (or all); accepts a comma-separated string."""
    if names is None:
        return [ALGORITHMS[name] for name in algorithm_names()]
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    specs = []
    for name in names:
        spec = ALGORITHMS.get(name.lower())
        if spec is None:
            raise ConfigError(
                f"unknown fuzz algorithm {name!r}; known: "
                f"{', '.join(algorithm_names())}")
        specs.append(spec)
    if not specs:
        raise ConfigError("no fuzz algorithms selected")
    return specs


# -- output canonicalization -------------------------------------------------


def output_map(diff: Dict[Any, int]) -> Dict[Any, Any]:
    """Render an output difference set as ``{key: value}``.

    Raises :class:`GraphsurgeError` when a record has multiplicity != 1
    or a key carries several values — both are result corruptions the
    fuzzer must surface, not mask.
    """
    out: Dict[Any, Any] = {}
    for record, mult in diff.items():
        try:
            key, value = record
        except (TypeError, ValueError):
            raise GraphsurgeError(
                f"output record {record!r} is not a (key, value) pair"
            ) from None
        if mult != 1:
            raise GraphsurgeError(
                f"output record {record!r} has multiplicity {mult}")
        if key in out:
            raise GraphsurgeError(
                f"key {key!r} has several values: {out[key]!r} and "
                f"{value!r}")
        out[key] = value
    return out


def canonical_diff(diff: Dict[Any, int]) -> str:
    """A byte-stable rendering of a difference set, for exact comparisons."""
    entries = [[encode_value(record), mult] for record, mult in diff.items()]
    entries.sort(key=lambda entry: json.dumps(entry, sort_keys=True,
                                              default=str))
    return json.dumps(entries, sort_keys=True, default=str)


def describe_map_mismatch(got: Dict[Any, Any],
                          want: Dict[Any, Any]) -> Optional[str]:
    """Human-readable delta between two result maps (None when equal)."""
    if got == want:
        return None
    missing = {k: want[k] for k in want if k not in got}
    extra = {k: got[k] for k in got if k not in want}
    wrong = {k: (got[k], want[k]) for k in want
             if k in got and got[k] != want[k]}
    parts = []
    if missing:
        parts.append(f"missing {_preview(missing)}")
    if extra:
        parts.append(f"unexpected {_preview(extra)}")
    if wrong:
        parts.append("wrong value (got, want) " + _preview(wrong))
    return "; ".join(parts)


def _preview(mapping: Dict[Any, Any], limit: int = 4) -> str:
    items = sorted(mapping.items(), key=repr)[:limit]
    text = ", ".join(f"{k!r}: {v!r}" for k, v in items)
    suffix = ", ..." if len(mapping) > limit else ""
    return f"{{{text}{suffix}}} ({len(mapping)} entries)"


__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "algorithm_names",
    "canonical_diff",
    "describe_map_mismatch",
    "output_map",
    "resolve_algorithms",
    "view_edge_list",
]

