"""The cross-backend shadow sanitizer (``sanitize=True`` runs).

The process backend's contract (``docs/parallel.md``) is observational
equivalence: counters, tracer streams, and outputs byte-identical to the
inline backend. The static shard-safety pass (:mod:`repro.analyze.shard`)
predicts violations; this module *detects* them dynamically. A sanitized
run shadow-executes every epoch on an inline twin of the same computation
and diffs the two activity streams superstep by superstep, failing with a
:class:`~repro.errors.SanitizerError` at the **first** divergent
``(operator, timestamp, shard)`` address — the exact kernel whose forked
state went wrong — instead of surfacing as a wrong final answer many
epochs later.

Mechanics: :func:`attach_shadow` hangs a :class:`ShadowSanitizer` off the
primary (process-backend) dataflow. ``Dataflow.step`` invokes
``after_step`` once the epoch quiesces; the sanitizer feeds the same input
differences to the shadow, then compares

* the per-superstep :class:`~repro.observe.tracer.StepRecord` frames —
  the ``op_units`` dicts keyed by ``(operator, timestamp, shard)`` whose
  maxima the meter sums into ``parallel_time`` — and
* the per-epoch diffs of every capture sink (value divergence with equal
  unit counts is invisible to frames; the captures catch it).

Both comparisons read trace sinks, which never feed back into the meter,
so a *clean* sanitized run leaves the primary's ``total_work`` and
``parallel_time`` byte-identical to an unsanitized run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.analyze.plan import PlanWalk
from repro.differential.operators.io import CaptureOp
from repro.errors import SanitizerError
from repro.observe.tracer import StepRecord, TraceSink
from repro.timely.worker import canonical_order_key, shard_for


class _Tee:
    """Forward every tracer hook to two sinks (user tracer + sanitizer)."""

    def __init__(self, first, second):
        self._sinks = (first, second)

    def enter_operator(self, name, scope_depth, time) -> None:
        for sink in self._sinks:
            sink.enter_operator(name, scope_depth, time)

    def exit_operator(self) -> None:
        for sink in self._sinks:
            sink.exit_operator()

    def begin_step(self) -> None:
        for sink in self._sinks:
            sink.begin_step()

    def end_step(self) -> None:
        for sink in self._sinks:
            sink.end_step()

    def record(self, worker, units, key=None) -> None:
        for sink in self._sinks:
            sink.record(worker, units, key)


class ShadowSanitizer:
    """Inline shadow execution + first-divergence frame diffing."""

    def __init__(self, shadow, primary_sink: TraceSink,
                 shadow_sink: TraceSink, paths: Dict[str, List[str]],
                 captures: List[Tuple[CaptureOp, CaptureOp]], workers: int):
        self.shadow = shadow
        self.primary_sink = primary_sink
        self.shadow_sink = shadow_sink
        self._paths = paths
        self._captures = captures
        self._workers = workers
        self._primary_mark = primary_sink.mark()

    # -- address helpers ------------------------------------------------------

    def _address(self, operator_name: str) -> str:
        candidates = self._paths.get(operator_name, ())
        return candidates[0] if len(candidates) == 1 else operator_name

    # -- the per-epoch hook (called by Dataflow.step) -------------------------

    def after_step(self, primary, input_diffs) -> None:
        shadow_start = self.shadow_sink.mark()
        self.shadow.step(input_diffs)
        primary_frames = self.primary_sink.window(self._primary_mark,
                                                 self.primary_sink.mark())
        shadow_frames = self.shadow_sink.window(shadow_start,
                                               self.shadow_sink.mark())
        self._primary_mark += len(primary_frames)
        self._compare_frames(primary_frames, shadow_frames, primary.epoch)
        self._compare_captures(primary.epoch)

    def _compare_frames(self, primary_frames: List[StepRecord],
                        shadow_frames: List[StepRecord],
                        epoch: int) -> None:
        count = max(len(primary_frames), len(shadow_frames))
        empty = StepRecord(index=-1, kind="step", depth=0)
        for index in range(count):
            p = primary_frames[index] if index < len(primary_frames) else \
                empty
            s = shadow_frames[index] if index < len(shadow_frames) else empty
            if p.op_units == s.op_units:
                continue
            span = self._first_divergent_span(p.op_units, s.op_units)
            operator, time, shard = span
            raise SanitizerError(
                self._address(operator), time, shard,
                f"superstep frame {index} of epoch {epoch}: process "
                f"backend metered {p.op_units.get(span, 0)} unit(s), "
                f"inline shadow metered {s.op_units.get(span, 0)}")

    @staticmethod
    def _first_divergent_span(primary: Dict, shadow: Dict
                              ) -> Tuple[str, Any, int]:
        spans = sorted(set(primary) | set(shadow),
                       key=lambda span: (span[1] or (), span[0], span[2]))
        for span in spans:
            if primary.get(span) != shadow.get(span):
                return span
        raise AssertionError("frames differ but no span does")

    def _compare_captures(self, epoch: int) -> None:
        time = (epoch,)
        for primary_cap, shadow_cap in self._captures:
            p_diff = primary_cap.diff_at(time)
            s_diff = shadow_cap.diff_at(time)
            if p_diff == s_diff:
                continue
            records = sorted(set(p_diff) | set(s_diff),
                             key=canonical_order_key)
            rec = next(r for r in records
                       if p_diff.get(r) != s_diff.get(r))
            key = rec[0] if isinstance(rec, tuple) and len(rec) == 2 else rec
            raise SanitizerError(
                self._address(primary_cap.name), time,
                shard_for(key, self._workers),
                f"captured diff for record {rec!r} is "
                f"{p_diff.get(rec, 0)} on the process backend but "
                f"{s_diff.get(rec, 0)} on the inline shadow")

    # -- lifecycle mirrors ----------------------------------------------------

    def compact(self, before_epoch: int) -> None:
        self.shadow.compact(before_epoch)

    def close(self) -> None:
        self.shadow.close()


def attach_shadow(primary, computation,
                  input_name: str = "edges") -> ShadowSanitizer:
    """Build an inline shadow of ``computation`` and wire it to ``primary``.

    ``primary`` must be a freshly built (never stepped) dataflow whose
    plan came from the same ``computation`` via the executor's standard
    build (one ``input_name`` input, one root capture per output). The
    shadow gets its own :class:`~repro.timely.meter.WorkMeter` at the
    same worker count, so nothing it does can perturb the primary's
    counters.
    """
    from repro.differential.dataflow import Dataflow

    if primary.epoch != -1:
        raise SanitizerError(
            "(attach)", (), -1,
            "the shadow must attach before the first step so both "
            "backends replay identical histories")
    workers = primary.meter.workers
    shadow = Dataflow(workers=workers)
    edges = shadow.new_input(input_name)
    result = computation.build(shadow, edges)
    shadow.capture(result, "results")

    shadow_sink = TraceSink(workers)
    shadow.tracer = shadow_sink
    shadow.meter.tracer = shadow_sink

    primary_sink = TraceSink(workers)
    if primary.tracer is None:
        primary.tracer = primary_sink
        primary.meter.tracer = primary_sink
    else:
        tee = _Tee(primary.tracer, primary_sink)
        primary.tracer = tee
        primary.meter.tracer = tee

    walk = PlanWalk(primary)
    paths: Dict[str, List[str]] = {}
    for op in walk.ops:
        paths.setdefault(op.name, []).append(walk.path(op))
    primary_captures = [op for op in walk.ops if isinstance(op, CaptureOp)]
    shadow_captures = sorted(
        (op for ops in shadow._ops_by_scope.values() for op in ops
         if isinstance(op, CaptureOp)), key=lambda op: op.index)
    if len(primary_captures) != len(shadow_captures):
        raise SanitizerError(
            "(attach)", (), -1,
            f"shadow build produced {len(shadow_captures)} capture(s) "
            f"but the primary has {len(primary_captures)}; the "
            f"computation's build is not deterministic")
    sanitizer = ShadowSanitizer(
        shadow, primary_sink, shadow_sink, paths,
        list(zip(primary_captures, shadow_captures)), workers)
    primary.sanitizer = sanitizer
    return sanitizer
