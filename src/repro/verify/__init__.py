"""Differential-oracle fuzzing for Graphsurge view collections.

The package cross-checks every execution mode of the analytics engine
against plain-Python oracles on randomized view collections, checks the
metamorphic invariants the engine's optimizers promise (worker count,
view order, checkpoint/resume, tracing, static-analyzer stability),
shrinks failures, and writes replayable repro files. See
``docs/verification.md``.
"""

from repro.verify.generator import (
    GeneratedCase,
    generate_case,
    random_churn_collection,
    random_gvdl_collection,
    random_window_collection,
)
from repro.verify.invariants import (
    INVARIANTS,
    Mismatch,
    build_check,
    check_analysis,
    check_checkpoint,
    check_oracle,
    check_permutation,
    check_sanitize,
    check_tracing,
    check_workers,
)
from repro.verify.sanitize import ShadowSanitizer, attach_shadow
from repro.verify.oracles import (
    ALGORITHMS,
    AlgorithmSpec,
    algorithm_names,
    canonical_diff,
    describe_map_mismatch,
    output_map,
    resolve_algorithms,
)
from repro.verify.replay import (
    REPRO_FORMAT,
    ReproFile,
    load_repro,
    replay_repro,
    write_repro,
)
from repro.verify.runner import FuzzConfig, FuzzReport, run_fuzz
from repro.verify.shrinker import ShrinkResult, shrink

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedCase",
    "INVARIANTS",
    "Mismatch",
    "REPRO_FORMAT",
    "ReproFile",
    "ShadowSanitizer",
    "ShrinkResult",
    "algorithm_names",
    "attach_shadow",
    "build_check",
    "canonical_diff",
    "check_analysis",
    "check_checkpoint",
    "check_oracle",
    "check_permutation",
    "check_sanitize",
    "check_tracing",
    "check_workers",
    "describe_map_mismatch",
    "generate_case",
    "load_repro",
    "output_map",
    "random_churn_collection",
    "random_gvdl_collection",
    "random_window_collection",
    "replay_repro",
    "resolve_algorithms",
    "run_fuzz",
    "shrink",
    "write_repro",
]
