"""The fuzz loop: generate → execute everywhere → cross-check → shrink.

Per iteration the runner generates one seeded case, runs **every**
selected algorithm under **every** :class:`ExecutionMode` against its
oracle, then runs the metamorphic battery (worker invariance, backend
invariance, view-order permutation, checkpoint/kill/resume, tracing
on/off, static-analyzer stability, streaming equivalence, shadow
sanitizer) for one rotating algorithm. The first violated check is
shrunk to a minimal collection and written as a replayable repro file
that also records the plan's analyzer findings.

Deterministic end to end: ``FuzzConfig(seed=...)`` fixes the case
stream, every sampled parameter, the kill sites, and the permutation
seeds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.executor import ExecutionMode
from repro.verify.generator import GeneratedCase, generate_case
from repro.verify.invariants import (
    Mismatch,
    build_check,
    check_analysis,
    check_backends,
    check_checkpoint,
    check_oracle,
    check_permutation,
    check_sanitize,
    check_stream,
    check_tracing,
    check_workers,
)
from repro.verify.oracles import AlgorithmSpec, resolve_algorithms
from repro.verify.replay import ReproFile, write_repro
from repro.verify.shrinker import shrink


@dataclass
class FuzzConfig:
    """Knobs for one fuzz run; everything derives from ``seed``."""

    seed: int = 0
    iterations: int = 20
    #: Algorithm names (or comma-separated string); ``None`` = all.
    algorithms: Optional[Sequence[str]] = None
    #: Where a failure's shrunk repro is written.
    repro_out: str = "fuzz-repro.json"
    #: Restrict generation grammars (``churn``/``window``/``gvdl``).
    kinds: Optional[Sequence[str]] = None
    #: Worker counts compared by the worker-invariance check.
    worker_counts: Tuple[int, ...] = (1, 4)
    #: Execution backends compared by the backend-invariance check.
    backends: Tuple[str, ...] = ("inline", "process")
    #: Abort on the first mismatch (CI) or keep fuzzing (soak).
    stop_on_mismatch: bool = True
    #: Budget for the shrinker's greedy search.
    max_shrink_checks: int = 200
    #: Run the metamorphic battery every N-th iteration (1 = always).
    invariant_stride: int = 1


@dataclass
class FuzzReport:
    """What a fuzz run covered and what, if anything, it broke."""

    seed: int
    iterations: int = 0
    cases_by_kind: Dict[str, int] = field(default_factory=dict)
    oracle_checks: int = 0
    invariant_checks: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    shrunk_views: Optional[int] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        kinds = ", ".join(f"{kind}={count}" for kind, count
                          in sorted(self.cases_by_kind.items()))
        status = "OK" if self.ok else \
            f"{len(self.mismatches)} MISMATCH(ES)"
        return (f"fuzz seed {self.seed}: {self.iterations} iteration(s) "
                f"[{kinds}], {self.oracle_checks} oracle checks, "
                f"{self.invariant_checks} invariant checks in "
                f"{self.wall_seconds:.1f}s — {status}")


def run_fuzz(config: FuzzConfig,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Execute the configured fuzz campaign; never raises on mismatches."""
    rng = random.Random(config.seed)
    specs = resolve_algorithms(config.algorithms)
    report = FuzzReport(seed=config.seed)
    started = time.perf_counter()

    def say(message: str) -> None:
        if log is not None:
            log(message)

    for iteration in range(config.iterations):
        case_seed = rng.randrange(2 ** 32)
        case = generate_case(case_seed, kinds=config.kinds)
        report.iterations += 1
        report.cases_by_kind[case.kind] = \
            report.cases_by_kind.get(case.kind, 0) + 1
        vertices = case.vertices()
        say(f"iter {iteration + 1}/{config.iterations}: {case.kind} case "
            f"(seed {case_seed}, {case.collection.num_views} views, "
            f"{case.collection.total_diffs} diffs)")

        failed = False
        for spec in specs:
            params = spec.sample_params(rng, vertices)
            for mode in ExecutionMode:
                mismatch = check_oracle(case.collection, spec, params, mode)
                report.oracle_checks += 1
                if mismatch is not None:
                    failed = True
                    _report_failure(config, report, case, spec, params,
                                    mismatch, say)
                    break
            if failed:
                break
        if failed and config.stop_on_mismatch:
            break

        if not failed and iteration % config.invariant_stride == 0:
            spec = specs[iteration % len(specs)]
            params = spec.sample_params(rng, vertices)
            battery = (
                lambda: check_workers(case.collection, spec, params,
                                      worker_counts=config.worker_counts),
                lambda: check_backends(case.collection, spec, params,
                                       backends=config.backends),
                lambda: check_permutation(case.collection, spec, params,
                                          perm_seed=rng.randrange(2 ** 16)),
                lambda: check_checkpoint(
                    case.collection, spec, params,
                    kill_at=rng.randrange(
                        1, max(2, case.collection.num_views))),
                lambda: check_tracing(case.collection, spec, params),
                lambda: check_analysis(case.collection, spec, params,
                                       perm_seed=rng.randrange(2 ** 16)),
                lambda: check_stream(case.collection, spec, params,
                                     backends=config.backends),
                lambda: check_sanitize(case.collection, spec, params),
            )
            for run_check in battery:
                mismatch = run_check()
                report.invariant_checks += 1
                if mismatch is not None:
                    failed = True
                    _report_failure(config, report, case, spec, params,
                                    mismatch, say)
                    break
            if failed and config.stop_on_mismatch:
                break

    report.wall_seconds = time.perf_counter() - started
    say(report.summary())
    return report


def _report_failure(config: FuzzConfig, report: FuzzReport,
                    case: GeneratedCase, spec: AlgorithmSpec, params: dict,
                    mismatch: Mismatch,
                    say: Callable[[str], None]) -> None:
    """Shrink the violation and persist a replayable repro file."""
    say(f"FAILED {mismatch}")
    check = build_check(spec, params, mismatch.check)
    result = shrink(case.collection, check,
                    max_checks=config.max_shrink_checks)
    say(f"shrunk to {result.collection.num_views} view(s) / "
        f"{result.collection.total_diffs} diff(s) after "
        f"{result.checks_run} check(s)")
    try:
        # Record the failing plan's static-analysis verdict alongside the
        # repro: an ERROR/WARNING finding on a plan whose run just
        # diverged is the first place to look.
        from repro.analyze import analyze_computation

        analysis = analyze_computation(spec.computation(params)).to_dict()
    except Exception as error:  # pragma: no cover - diagnostics must not
        analysis = {"error": f"{type(error).__name__}: {error}"}  # block repro
    repro = ReproFile(
        seed=case.seed,
        kind=case.kind,
        algorithm=spec.name,
        params=params,
        check=mismatch.check,
        detail=result.mismatch.detail,
        collection=result.collection,
        gvdl_text=case.gvdl_text,
        shrink_info={
            "checks_run": result.checks_run,
            "views_dropped": result.views_dropped,
            "diffs_dropped": result.diffs_dropped,
            "original_views": case.collection.num_views,
        },
        analysis=analysis,
    )
    path = write_repro(config.repro_out, repro)
    say(f"wrote repro file {path}")
    report.mismatches.append(result.mismatch)
    report.repro_paths.append(str(path))
    report.shrunk_views = result.collection.num_views
