"""Greedy failure shrinking: minimize a collection that violates a check.

Two passes, both greedy and bounded by a check budget:

1. **Drop views** — repeatedly try removing whole views (difference sets)
   while the check still fails. Removing view *i* folds the remaining
   stream (later views' full edge sets change); that is fine — the goal
   is *a* minimal failing workload, not a sub-slice of the original.
2. **Drop diffs** — try removing individual edge entries from each
   surviving view's difference set.

The result is typically a 1-view, few-edge collection that reproduces
the violation, which the replay module persists as a repro file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.view_collection import (
    MaterializedCollection,
    collection_from_diffs,
)
from repro.verify.invariants import Mismatch

Check = Callable[[MaterializedCollection], Optional[Mismatch]]


@dataclass
class ShrinkResult:
    """The minimal failing collection the budgeted search found."""

    collection: MaterializedCollection
    mismatch: Mismatch
    checks_run: int
    views_dropped: int
    diffs_dropped: int


def _rebuild(name: str, diffs: List[dict],
             names: List[str]) -> MaterializedCollection:
    return collection_from_diffs(name, diffs, view_names=names,
                                 source="shrunk")


def _valid_stream(diffs: List[dict]) -> bool:
    """No edge may accumulate a negative multiplicity at any view.

    Dropping a ``+1`` entry whose ``-1`` survives in a later view would
    produce a stream no materializer can emit; such candidates are
    skipped rather than handed to the engine.
    """
    acc: dict = {}
    for diff in diffs:
        for edge, mult in diff.items():
            new = acc.get(edge, 0) + mult
            if new < 0:
                return False
            acc[edge] = new
    return True


def shrink(collection: MaterializedCollection, check: Check,
           max_checks: int = 250) -> ShrinkResult:
    """Minimize ``collection`` while ``check`` keeps failing.

    ``check`` must fail on the input collection (the caller observed the
    mismatch); raises ``ValueError`` otherwise so a flaky check is
    surfaced instead of silently "shrunk" to nothing.
    """
    mismatch = check(collection)
    if mismatch is None:
        raise ValueError("check does not fail on the initial collection")
    checks_run = 1
    diffs = [dict(diff) for diff in collection.diffs]
    names = list(collection.view_names)
    views_dropped = 0
    diffs_dropped = 0
    shrunk_name = collection.name + "-shrunk"

    # Pass 1: whole views, repeated until a fixed point.
    progress = True
    while progress and len(diffs) > 1 and checks_run < max_checks:
        progress = False
        index = 0
        while index < len(diffs) and len(diffs) > 1:
            if checks_run >= max_checks:
                break
            kept = diffs[:index] + diffs[index + 1:]
            if not _valid_stream(kept):
                index += 1
                continue
            candidate = _rebuild(shrunk_name, kept,
                                 names[:index] + names[index + 1:])
            checks_run += 1
            failed = check(candidate)
            if failed is not None:
                del diffs[index]
                del names[index]
                mismatch = failed
                views_dropped += 1
                progress = True
            else:
                index += 1

    # Pass 2: individual difference entries.
    progress = True
    while progress and checks_run < max_checks:
        progress = False
        for view_index in range(len(diffs)):
            for edge in list(diffs[view_index]):
                if checks_run >= max_checks:
                    break
                trimmed = [dict(diff) for diff in diffs]
                del trimmed[view_index][edge]
                if not _valid_stream(trimmed):
                    continue
                candidate = _rebuild(shrunk_name, trimmed, names)
                checks_run += 1
                failed = check(candidate)
                if failed is not None:
                    diffs = trimmed
                    mismatch = failed
                    diffs_dropped += 1
                    progress = True

    return ShrinkResult(
        collection=_rebuild(shrunk_name, diffs, names),
        mismatch=mismatch,
        checks_run=checks_run,
        views_dropped=views_dropped,
        diffs_dropped=diffs_dropped,
    )
