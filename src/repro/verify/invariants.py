"""The fuzzer's checks: oracle cross-validation plus the metamorphic
invariants Graphsurge's contract promises but hand-written tests rarely
cover together.

Every check has the same shape — ``check_*(collection, spec, params,
...) -> Optional[Mismatch]`` — and records enough in ``Mismatch.check``
to be re-run verbatim by the shrinker and the repro replayer
(:func:`build_check`). A check returning ``None`` means the invariant
held.

Invariants:

* **oracle** — each view's output under one :class:`ExecutionMode`
  equals the plain-Python reference on that view's full edge list.
* **workers** — per-view outputs and total work are identical across
  simulated worker counts (sharding changes parallel time only).
* **backend** — per-view outputs and *both* metered counters are
  byte-identical between the inline and process execution backends
  (see ``docs/parallel.md``): moving shards onto real OS processes is
  purely an execution-strategy change.
* **permutation** — running the ordering optimizer's permuted collection
  yields the same output per view *name*.
* **checkpoint** — kill the run at a view boundary via
  :class:`FaultPlan`, resume from the journal, and require byte-identical
  per-view outputs versus the uninterrupted run.
* **tracing** — attaching a :class:`TraceSink` never changes outputs or
  the metered counters.
* **analysis** — the static analyzer's verdict (see :mod:`repro.analyze`)
  is a pure function of the plan: an analyzer-clean plan stays clean
  after executing it and under view-order permutation, and re-analyzing
  an executed dataflow reports the same findings as the pristine one.
* **stream** — driving the collection's difference sets through the
  streaming engine (:mod:`repro.stream`) one batch per epoch yields, at
  *every* epoch, exactly the from-scratch result on the accumulated
  edges — and the per-epoch outputs and meter rows are byte-identical
  across the inline and process backends.
* **sanitize** — a ``sanitize=True`` process-backend run (the shadow
  sanitizer, :mod:`repro.verify.sanitize`) of a clean plan never fires
  and leaves outputs and both metered counters byte-identical to an
  unsanitized process run: the shadow observes, never perturbs.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.resilience import FaultPlan
from repro.core.view_collection import (
    MaterializedCollection,
    reorder_collection,
)
from repro.errors import GraphsurgeError, InjectedFault
from repro.verify.oracles import (
    AlgorithmSpec,
    canonical_diff,
    describe_map_mismatch,
    output_map,
    view_edge_list,
)

#: Invariant names understood by :func:`build_check` / the repro replayer.
INVARIANTS = ("oracle", "workers", "backend", "permutation", "checkpoint",
              "tracing", "analysis", "stream", "sanitize")


@dataclass
class Mismatch:
    """One violated invariant, with everything needed to re-run it."""

    invariant: str
    algorithm: str
    detail: str
    view: Optional[str] = None
    #: Keyword arguments that pin the exact failing check (mode, worker
    #: counts, kill site, permutation seed) for shrink/replay.
    check: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" view {self.view!r}" if self.view else ""
        return (f"[{self.invariant}] {self.algorithm}{where}: "
                f"{self.detail}")


def _run(collection: MaterializedCollection, spec: AlgorithmSpec,
         params: dict, mode: ExecutionMode, workers: int = 1,
         tracer=None, backend: str = "inline", sanitize: bool = False,
         **kwargs):
    executor = AnalyticsExecutor(workers=workers, tracer=tracer,
                                 backend=backend, sanitize=sanitize)
    return executor.run_on_collection(
        spec.computation(params), collection, mode=mode,
        keep_outputs=True, cost_metric="work", **kwargs)


# -- oracle ------------------------------------------------------------------


def check_oracle(collection: MaterializedCollection, spec: AlgorithmSpec,
                 params: dict, mode: ExecutionMode,
                 workers: int = 1) -> Optional[Mismatch]:
    """Every view's output equals the reference on its full edge list."""
    check = {"invariant": "oracle", "mode": mode.value, "workers": workers}
    try:
        result = _run(collection, spec, params, mode, workers=workers)
        for index in range(collection.num_views):
            triples = view_edge_list(collection, index)
            want = spec.expected(triples, params)
            got = output_map(result.views[index].output)
            detail = describe_map_mismatch(got, want)
            if detail is not None:
                return Mismatch("oracle", spec.name, detail,
                                view=collection.view_names[index],
                                check=check)
    except GraphsurgeError as error:
        return Mismatch("oracle", spec.name,
                        f"{type(error).__name__}: {error}", check=check)
    return None


# -- worker-count invariance -------------------------------------------------


def check_workers(collection: MaterializedCollection, spec: AlgorithmSpec,
                  params: dict,
                  worker_counts: Sequence[int] = (1, 4)
                  ) -> Optional[Mismatch]:
    """Outputs and total work must not depend on the shard count."""
    check = {"invariant": "workers", "worker_counts": list(worker_counts)}
    baseline = None
    for workers in worker_counts:
        result = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                      workers=workers)
        outputs = [canonical_diff(view.output) for view in result.views]
        if baseline is None:
            baseline = (worker_counts[0], outputs, result.total_work)
            continue
        base_workers, base_outputs, base_work = baseline
        if result.total_work != base_work:
            return Mismatch(
                "workers", spec.name,
                f"total_work {result.total_work} with workers={workers} "
                f"!= {base_work} with workers={base_workers}", check=check)
        for index, (got, want) in enumerate(zip(outputs, base_outputs)):
            if got != want:
                return Mismatch(
                    "workers", spec.name,
                    f"outputs differ between workers={base_workers} and "
                    f"workers={workers}",
                    view=collection.view_names[index], check=check)
    return None


# -- backend invariance ------------------------------------------------------


def check_backends(collection: MaterializedCollection, spec: AlgorithmSpec,
                   params: dict,
                   backends: Sequence[str] = ("inline", "process"),
                   workers: int = 2) -> Optional[Mismatch]:
    """Inline and process backends are observationally identical.

    Stronger than :func:`check_workers`: not just outputs and total work
    but also ``total_parallel_time`` must match byte-for-byte, because
    the process backend replays the workers' meter events on the
    coordinator in the original order.
    """
    check = {"invariant": "backend", "backends": list(backends),
             "workers": workers}
    baseline = None
    for backend in backends:
        result = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                      workers=workers, backend=backend)
        outputs = [canonical_diff(view.output) for view in result.views]
        observed = (result.total_work, result.total_parallel_time)
        if baseline is None:
            baseline = (backend, outputs, observed)
            continue
        base_backend, base_outputs, base_observed = baseline
        if observed != base_observed:
            return Mismatch(
                "backend", spec.name,
                f"(work, parallel_time) {observed} with backend={backend} "
                f"!= {base_observed} with backend={base_backend}",
                check=check)
        for index, (got, want) in enumerate(zip(outputs, base_outputs)):
            if got != want:
                return Mismatch(
                    "backend", spec.name,
                    f"outputs differ between backend={base_backend} and "
                    f"backend={backend}",
                    view=collection.view_names[index], check=check)
    return None


# -- view-order permutation --------------------------------------------------


def check_permutation(collection: MaterializedCollection,
                      spec: AlgorithmSpec, params: dict,
                      perm_seed: int = 0,
                      order_method: str = "random") -> Optional[Mismatch]:
    """The ordering optimizer may change cost, never per-view results."""
    check = {"invariant": "permutation", "perm_seed": perm_seed,
             "order_method": order_method}
    if collection.num_views < 2 or collection.total_diffs == 0:
        return None
    baseline = _run(collection, spec, params, ExecutionMode.DIFF_ONLY)
    permuted_collection = reorder_collection(
        collection, order_method=order_method, seed=perm_seed)
    permuted = _run(permuted_collection, spec, params,
                    ExecutionMode.DIFF_ONLY)
    base_by_name = baseline.outputs_by_view()
    perm_by_name = permuted.outputs_by_view()
    if sorted(base_by_name) != sorted(perm_by_name):
        return Mismatch(
            "permutation", spec.name,
            f"view names changed under reordering: "
            f"{sorted(base_by_name)} vs {sorted(perm_by_name)}",
            check=check)
    for name in base_by_name:
        if canonical_diff(base_by_name[name]) != \
                canonical_diff(perm_by_name[name]):
            detail = describe_map_mismatch(
                output_map(perm_by_name[name]),
                output_map(base_by_name[name]))
            return Mismatch("permutation", spec.name,
                            detail or "outputs differ", view=name,
                            check=check)
    return None


# -- checkpoint / kill / resume ----------------------------------------------


def check_checkpoint(collection: MaterializedCollection,
                     spec: AlgorithmSpec, params: dict,
                     kill_at: int = 1,
                     work_dir: Optional[str] = None) -> Optional[Mismatch]:
    """Kill at the ``kill_at``-th view boundary, resume, compare outputs.

    ``kill_at`` indexes the dataflow's epoch invocations under DIFF_ONLY
    (one per view); resumed per-view outputs must be byte-identical to an
    uninterrupted run's.
    """
    check = {"invariant": "checkpoint", "kill_at": kill_at}
    if collection.num_views < 2:
        return None
    kill_at = kill_at % collection.num_views
    baseline = _run(collection, spec, params, ExecutionMode.DIFF_ONLY)
    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        path = Path(tmp) / "fuzz.ckpt"
        plan = FaultPlan.single("epoch", kill_at)
        try:
            _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                 checkpoint_path=path, fault_plan=plan)
            return Mismatch(
                "checkpoint", spec.name,
                f"planned kill at epoch {kill_at} never fired "
                f"({collection.num_views} views)", check=check)
        except InjectedFault:
            pass
        resumed = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                       resume_from=path)
    if resumed.resumed_views != kill_at:
        return Mismatch(
            "checkpoint", spec.name,
            f"resume restored {resumed.resumed_views} views, expected "
            f"{kill_at}", check=check)
    for index in range(collection.num_views):
        got = canonical_diff(resumed.views[index].output)
        want = canonical_diff(baseline.views[index].output)
        if got != want:
            return Mismatch(
                "checkpoint", spec.name,
                "resumed output differs from uninterrupted run",
                view=collection.view_names[index], check=check)
    return None


# -- tracing on/off ----------------------------------------------------------


def check_tracing(collection: MaterializedCollection, spec: AlgorithmSpec,
                  params: dict) -> Optional[Mismatch]:
    """A TraceSink must observe, never perturb."""
    from repro.observe import TraceSink

    check = {"invariant": "tracing"}
    plain = _run(collection, spec, params, ExecutionMode.DIFF_ONLY)
    traced = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                  tracer=TraceSink(1))
    if (traced.total_work, traced.total_parallel_time) != \
            (plain.total_work, plain.total_parallel_time):
        return Mismatch(
            "tracing", spec.name,
            f"counters changed under tracing: work "
            f"{plain.total_work}->{traced.total_work}, parallel time "
            f"{plain.total_parallel_time}->{traced.total_parallel_time}",
            check=check)
    for index in range(collection.num_views):
        if canonical_diff(plain.views[index].output) != \
                canonical_diff(traced.views[index].output):
            return Mismatch("tracing", spec.name,
                            "outputs changed under tracing",
                            view=collection.view_names[index], check=check)
    return None


# -- static-analysis stability -----------------------------------------------


def check_analysis(collection: MaterializedCollection, spec: AlgorithmSpec,
                   params: dict, perm_seed: int = 0) -> Optional[Mismatch]:
    """The analyzer's verdict is a pure function of the plan.

    Three statements, all falsifiable here: the built-in plans are
    analyzer-clean (no ERROR findings); re-analyzing the *same* dataflow
    after executing it reports identical findings (the passes read only
    the operator DAG, never runtime state); and rebuilding + re-running
    under a permuted view order leaves a fresh plan's verdict unchanged.
    """
    from repro.analyze import analyze, analyze_computation
    from repro.differential.dataflow import Dataflow
    from repro.graph.edge_stream import EdgeStream

    check = {"invariant": "analysis", "perm_seed": perm_seed}
    computation = spec.computation(params)
    dataflow = Dataflow()
    result = computation.build(dataflow, dataflow.new_input("edges"))
    dataflow.capture(result, "results")
    before = analyze(dataflow)
    if not before.ok:
        head = before.errors()[0]
        return Mismatch(
            "analysis", spec.name,
            f"plan has {len(before.errors())} ERROR finding(s); first: "
            f"{head.rule} {head.operator}: {head.message}", check=check)
    stream = EdgeStream(list(collection.full_view_edges(0)))
    dataflow.step(
        {"edges": stream.as_input_diff(directed=computation.directed)})
    executed = analyze(dataflow)
    if executed.to_dict() != before.to_dict():
        return Mismatch(
            "analysis", spec.name,
            "re-analyzing the executed dataflow changed the verdict "
            "(analysis must not read runtime state)", check=check)
    if collection.num_views >= 2 and collection.total_diffs > 0:
        permuted = reorder_collection(collection, order_method="random",
                                      seed=perm_seed)
        _run(permuted, spec, params, ExecutionMode.DIFF_ONLY)
        rebuilt = analyze_computation(computation)
        if rebuilt.to_dict() != before.to_dict():
            return Mismatch(
                "analysis", spec.name,
                "analyzer verdict changed under view-order permutation",
                check=check)
    return None


# -- streaming equivalence ---------------------------------------------------


def check_stream(collection: MaterializedCollection, spec: AlgorithmSpec,
                 params: dict,
                 backends: Sequence[str] = ("inline", "process"),
                 workers: int = 2) -> Optional[Mismatch]:
    """Streamed results equal from-scratch at every epoch, per backend.

    The collection's difference sets become a batch stream
    (:func:`repro.stream.source.batches_from_collection`); after the
    engine absorbs batch ``i``, its accumulated edges are view ``i``'s
    full edge multiset, so the on-demand snapshot must equal the plain
    reference on that view's edge list. Across backends the per-epoch
    output deltas and deterministic meter figures (work, parallel time —
    never wall-clock latency) must match byte-for-byte at the same
    worker count.
    """
    from repro.stream import StreamEngine, batches_from_collection

    check = {"invariant": "stream", "backends": list(backends),
             "workers": workers}
    batches = batches_from_collection(collection)
    if not batches:
        return None
    baseline = None
    for backend in backends:
        engine = StreamEngine(workers=workers, backend=backend)
        try:
            try:
                signature = engine.register(spec.name, params)
            except GraphsurgeError:
                return None  # not servable as a continuous query; vacuous
            snapshots = []
            for index, batch in enumerate(batches):
                engine.ingest(batch)
                snapshot = engine.snapshot(signature)
                want = spec.expected(view_edge_list(collection, index),
                                     params)
                detail = describe_map_mismatch(output_map(snapshot), want)
                if detail is not None:
                    return Mismatch(
                        "stream", spec.name,
                        f"epoch {engine.epoch} backend={backend}: {detail}",
                        view=collection.view_names[index], check=check)
                snapshots.append(canonical_diff(snapshot))
            meter_rows = [(m.epoch, m.delta_records, m.output_delta_size,
                           m.work, m.parallel_time)
                          for m in engine.meter.epochs]
        except GraphsurgeError as error:
            return Mismatch(
                "stream", spec.name,
                f"backend={backend}: {type(error).__name__}: {error}",
                check=check)
        finally:
            engine.close()
        if baseline is None:
            baseline = (backend, snapshots, meter_rows)
            continue
        base_backend, base_snapshots, base_rows = baseline
        if meter_rows != base_rows:
            first = next((i for i, (got, want)
                          in enumerate(zip(meter_rows, base_rows))
                          if got != want), len(base_rows))
            return Mismatch(
                "stream", spec.name,
                f"per-epoch meter rows diverge at epoch {first + 1} "
                f"between backend={base_backend} and backend={backend}",
                check=check)
        if snapshots != base_snapshots:
            return Mismatch(
                "stream", spec.name,
                f"per-epoch snapshots differ between "
                f"backend={base_backend} and backend={backend}",
                check=check)
    return None


# -- shadow sanitizer --------------------------------------------------------


def check_sanitize(collection: MaterializedCollection, spec: AlgorithmSpec,
                   params: dict, workers: int = 2) -> Optional[Mismatch]:
    """The shadow sanitizer observes, never fires, never perturbs.

    A ``sanitize=True`` run of an analyzer-clean plan on the process
    backend must complete without :class:`~repro.errors.SanitizerError`
    (the backends really are observationally equal, so the shadow diff
    finds nothing) and must leave per-view outputs, ``total_work``, and
    ``parallel_time`` byte-identical to an unsanitized process run — the
    shadow executes on its own meter and trace sinks.
    """
    from repro.errors import SanitizerError

    check = {"invariant": "sanitize", "workers": workers}
    plain = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                 workers=workers, backend="process")
    try:
        shadowed = _run(collection, spec, params, ExecutionMode.DIFF_ONLY,
                        workers=workers, backend="process", sanitize=True)
    except SanitizerError as error:
        return Mismatch(
            "sanitize", spec.name,
            f"shadow sanitizer fired on a clean plan: {error}", check=check)
    if (shadowed.total_work, shadowed.total_parallel_time) != \
            (plain.total_work, plain.total_parallel_time):
        return Mismatch(
            "sanitize", spec.name,
            f"counters changed under sanitize: work "
            f"{plain.total_work}->{shadowed.total_work}, parallel time "
            f"{plain.total_parallel_time}->{shadowed.total_parallel_time}",
            check=check)
    for index in range(collection.num_views):
        if canonical_diff(plain.views[index].output) != \
                canonical_diff(shadowed.views[index].output):
            return Mismatch("sanitize", spec.name,
                            "outputs changed under sanitize",
                            view=collection.view_names[index], check=check)
    return None


# -- dispatch for shrink / replay --------------------------------------------


def build_check(spec: AlgorithmSpec, params: dict, check: Dict[str, Any]
                ) -> Callable[[MaterializedCollection], Optional[Mismatch]]:
    """A re-runnable closure for the exact check a ``Mismatch`` recorded."""
    invariant = check.get("invariant")
    if invariant == "oracle":
        mode = ExecutionMode(check["mode"])
        workers = int(check.get("workers", 1))
        return lambda collection: check_oracle(collection, spec, params,
                                               mode, workers=workers)
    if invariant == "workers":
        counts = tuple(check.get("worker_counts", (1, 4)))
        return lambda collection: check_workers(collection, spec, params,
                                                worker_counts=counts)
    if invariant == "backend":
        backends = tuple(check.get("backends", ("inline", "process")))
        workers = int(check.get("workers", 2))
        return lambda collection: check_backends(
            collection, spec, params, backends=backends, workers=workers)
    if invariant == "permutation":
        seed = int(check.get("perm_seed", 0))
        method = check.get("order_method", "random")
        return lambda collection: check_permutation(
            collection, spec, params, perm_seed=seed, order_method=method)
    if invariant == "checkpoint":
        kill_at = int(check.get("kill_at", 1))
        return lambda collection: check_checkpoint(collection, spec, params,
                                                   kill_at=kill_at)
    if invariant == "tracing":
        return lambda collection: check_tracing(collection, spec, params)
    if invariant == "analysis":
        seed = int(check.get("perm_seed", 0))
        return lambda collection: check_analysis(collection, spec, params,
                                                 perm_seed=seed)
    if invariant == "stream":
        backends = tuple(check.get("backends", ("inline", "process")))
        workers = int(check.get("workers", 2))
        return lambda collection: check_stream(
            collection, spec, params, backends=backends, workers=workers)
    if invariant == "sanitize":
        workers = int(check.get("workers", 2))
        return lambda collection: check_sanitize(
            collection, spec, params, workers=workers)
    raise GraphsurgeError(f"unknown invariant {invariant!r}; expected one "
                          f"of {INVARIANTS}")
