"""Seeded random view-collection generation for the differential oracle.

Three generation grammars, mirroring the ways real collections reach the
executor (see docs/verification.md):

* **churn** — difference sets built directly (random edge additions and
  removals per view, weighted, occasionally a no-op view), the shape of
  the paper's Orkut experiment.
* **window** — a random property graph windowed over an integer edge
  property through the builders in :mod:`repro.core.windows`
  (cumulative / sliding / expand-shrink-slide).
* **gvdl** — a random property graph plus generated GVDL text executed
  through a full :class:`~repro.core.system.Graphsurge` session, so the
  lexer, parser, predicate compiler, and EBM pipeline are all inside the
  fuzzed surface.

Everything is derived from one ``random.Random(seed)``: the same seed
always yields byte-identical collections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.view_collection import (
    MaterializedCollection,
    collection_from_diffs,
)
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema

#: The generation grammars, with churn weighted highest (cheapest and
#: most adversarial: removals, re-additions, duplicate weights).
KINDS = ("churn", "window", "gvdl")
_KIND_WEIGHTS = (2, 1, 1)


@dataclass
class GeneratedCase:
    """One fuzz input: a collection plus how it was produced."""

    seed: int
    kind: str
    collection: MaterializedCollection
    #: The generated statement text for ``gvdl`` cases (replay aid).
    gvdl_text: Optional[str] = None

    def vertices(self) -> List[int]:
        """Sorted union of endpoints over every view's difference set."""
        out = set()
        for diff in self.collection.diffs:
            for (_eid, src, dst, _w) in diff:
                out.add(src)
                out.add(dst)
        return sorted(out)


# -- churn: direct difference-set generation ---------------------------------


def random_churn_collection(seed: int,
                            num_views: Optional[int] = None,
                            num_nodes: Optional[int] = None,
                            churn: Optional[int] = None
                            ) -> MaterializedCollection:
    """A weighted random-churn collection built straight from diffs.

    Each view removes and adds a few edges relative to its predecessor;
    weights are drawn from 1..5 and preserved per ``(src, dst, weight)``
    identity so a remove-then-identical-re-add inside one view cancels to
    a no-op, exactly like the EBM pipeline's difference sets.
    """
    rng = random.Random(seed)
    n = num_nodes if num_nodes is not None else rng.randint(6, 12)
    views = num_views if num_views is not None else rng.randint(2, 6)
    per_view = churn if churn is not None else rng.randint(2, 8)

    edge_ids: Dict[Tuple[int, int, int], int] = {}

    def key(u: int, v: int, w: int) -> Tuple[int, int, int, int]:
        identity = (u, v, w)
        eid = edge_ids.setdefault(identity, len(edge_ids))
        return (eid, u, v, w)

    def bump(diff: dict, k: tuple, delta: int) -> None:
        mult = diff.get(k, 0) + delta
        if mult:
            diff[k] = mult
        else:
            diff.pop(k, None)

    current: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}
    diffs = []
    base = {}
    for _ in range(rng.randint(n, 2 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or (u, v) in current:
            continue
        k = key(u, v, rng.randint(1, 5))
        current[(u, v)] = k
        bump(base, k, +1)
    diffs.append(base)
    for _view in range(views - 1):
        diff: dict = {}
        if rng.random() < 0.08:
            # A deliberate no-op view: identical to its predecessor.
            diffs.append(diff)
            continue
        removals = rng.randint(0, min(per_view, len(current)))
        for pair in rng.sample(sorted(current), removals):
            bump(diff, current.pop(pair), -1)
        for _ in range(rng.randint(0, per_view)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (u, v) in current:
                continue
            k = key(u, v, rng.randint(1, 5))
            current[(u, v)] = k
            bump(diff, k, +1)
        diffs.append(diff)
    return collection_from_diffs(f"fuzz-churn-{seed}", diffs,
                                 source="fuzz")


# -- shared random property graph --------------------------------------------


def _random_property_graph(rng: random.Random, name: str = "g"
                           ) -> PropertyGraph:
    """Random graph with ``ts``/``w`` edge and ``grp`` node properties."""
    n = rng.randint(6, 12)
    graph = PropertyGraph(
        name,
        node_schema=Schema({"grp": PropertyType.INT}),
        edge_schema=Schema({"ts": PropertyType.INT,
                            "w": PropertyType.INT}))
    groups = rng.randint(2, 4)
    for node in range(n):
        graph.add_node(node, {"grp": rng.randrange(groups)})
    seen = set()
    for _ in range(rng.randint(2 * n, 4 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        graph.add_edge(u, v, {"ts": rng.randrange(100),
                              "w": rng.randint(1, 5)})
    return graph


# -- window: the builders of repro.core.windows ------------------------------


def random_window_collection(seed: int) -> MaterializedCollection:
    """Window a random graph's ``ts`` property with a random builder."""
    from repro.core.windows import (
        cumulative_windows,
        expand_shrink_slide,
        sliding_windows,
    )

    rng = random.Random(seed)
    graph = _random_property_graph(rng)
    shape = rng.choice(("cumulative", "sliding", "expand-shrink"))
    if shape == "cumulative":
        start = rng.randrange(10, 40)
        step = rng.randint(10, 30)
        count = rng.randint(2, 5)
        definition = cumulative_windows(
            f"fuzz-window-{seed}", graph.name, "ts",
            bounds=range(start, start + step * count, step))
    elif shape == "sliding":
        definition = sliding_windows(
            f"fuzz-window-{seed}", graph.name, "ts",
            start=rng.randrange(0, 30), width=rng.randint(15, 45),
            slide=rng.randint(10, 40), count=rng.randint(2, 5))
    else:
        phases = []
        lo, hi = rng.randrange(0, 30), rng.randrange(40, 80)
        for _ in range(rng.randint(2, 5)):
            phases.append((lo, hi))
            lo = max(0, lo + rng.randint(-15, 15))
            hi = max(lo + 5, hi + rng.randint(-15, 15))
        definition = expand_shrink_slide(
            f"fuzz-window-{seed}", graph.name, "ts", phases)
    weight = "w" if rng.random() < 0.5 else None
    return definition.materialize(graph, weight_property=weight)


# -- gvdl: generated statement text through a full session -------------------


def _random_predicate(rng: random.Random) -> str:
    atoms = [
        lambda: f"ts <= {rng.randrange(10, 95)}",
        lambda: f"ts > {rng.randrange(5, 60)}",
        lambda: f"ts between {rng.randrange(0, 40)} "
                f"and {rng.randrange(40, 99)}",
        lambda: f"w >= {rng.randint(1, 4)}",
        lambda: f"w in ({rng.randint(1, 2)}, {rng.randint(3, 5)})",
        lambda: "src.grp = dst.grp",
        lambda: f"src.grp != {rng.randrange(3)}",
        lambda: f"dst.grp = {rng.randrange(3)}",
    ]
    terms = [rng.choice(atoms)() for _ in range(rng.randint(1, 3))]
    joiner = rng.choice([" and ", " or "])
    text = joiner.join(terms)
    if len(terms) > 1 and rng.random() < 0.25:
        text = f"not ({text})"
    return text


def random_gvdl_collection(seed: int
                           ) -> Tuple[MaterializedCollection, str]:
    """Generate GVDL text and execute it in a fresh Graphsurge session."""
    from repro.core.system import Graphsurge

    rng = random.Random(seed)
    graph = _random_property_graph(rng)
    name = f"fuzz-gvdl-{seed}"
    views = ",\n".join(
        f"[v{i}: {_random_predicate(rng)}]"
        for i in range(rng.randint(2, 5)))
    text = f"create view collection {name} on g\n{views};"
    weight = "w" if rng.random() < 0.5 else None
    session = Graphsurge(weight_property=weight)
    session.add_graph(graph, "g")
    session.execute(text)
    return session.views.get_collection(name), text


# -- top level ---------------------------------------------------------------


def generate_case(seed: int,
                  kinds: Optional[Sequence[str]] = None) -> GeneratedCase:
    """One deterministic fuzz case; ``kinds`` restricts the grammar."""
    rng = random.Random(seed)
    allowed = tuple(kinds) if kinds else KINDS
    for kind in allowed:
        if kind not in KINDS:
            raise ValueError(f"unknown case kind {kind!r}; "
                             f"expected one of {KINDS}")
    weights = [_KIND_WEIGHTS[KINDS.index(kind)] for kind in allowed]
    kind = rng.choices(allowed, weights=weights)[0]
    sub_seed = rng.randrange(2 ** 32)
    if kind == "churn":
        return GeneratedCase(seed, kind, random_churn_collection(sub_seed))
    if kind == "window":
        return GeneratedCase(seed, kind, random_window_collection(sub_seed))
    collection, text = random_gvdl_collection(sub_seed)
    return GeneratedCase(seed, kind, collection, gvdl_text=text)
