"""Replayable repro files for fuzzer failures.

A repro file is one checksummed JSON document pinning everything needed
to re-run a violated check: the (shrunk) collection, the algorithm and
its sampled parameters, the exact check descriptor, and provenance (the
iteration seed, generation kind, optional GVDL text). Written through
the same atomic-write helper as collection persistence, so a crash
mid-report never leaves a torn file.

Replay (``python -m repro.cli fuzz --replay FILE``) rebuilds the check
via :func:`repro.verify.invariants.build_check` and reports whether the
mismatch still reproduces on the current code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.persistence import (
    atomic_write_text,
    collection_from_payload,
    collection_payload,
)
from repro.core.resilience import decode_value, encode_value
from repro.core.view_collection import MaterializedCollection
from repro.errors import StoreError
from repro.verify.invariants import Mismatch, build_check
from repro.verify.oracles import ALGORITHMS

PathLike = Union[str, Path]

REPRO_FORMAT = 1


@dataclass
class ReproFile:
    """A loaded (or to-be-written) fuzzer repro."""

    seed: int
    kind: str
    algorithm: str
    params: Dict[str, Any]
    check: Dict[str, Any]
    detail: str
    collection: MaterializedCollection
    gvdl_text: Optional[str] = None
    shrink_info: Dict[str, Any] = field(default_factory=dict)
    #: Static-analysis verdict of the failing plan
    #: (``AnalysisReport.to_dict()``), recorded by the fuzz runner so a
    #: repro carries the analyzer's view of the plan it pins.
    analysis: Optional[Dict[str, Any]] = None


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def write_repro(path: PathLike, repro: ReproFile) -> Path:
    """Atomically persist a repro file; returns the written path."""
    payload = {
        "seed": repro.seed,
        "kind": repro.kind,
        "algorithm": repro.algorithm,
        "params": {name: encode_value(value)
                   for name, value in repro.params.items()},
        "check": repro.check,
        "detail": repro.detail,
        "collection": collection_payload(repro.collection),
        "gvdl_text": repro.gvdl_text,
        "shrink_info": repro.shrink_info,
        "analysis": repro.analysis,
    }
    envelope = {
        "format": REPRO_FORMAT,
        "sha256": _digest(payload),
        "payload": payload,
    }
    path = Path(path)
    atomic_write_text(path, json.dumps(envelope, indent=1, sort_keys=True))
    return path


def load_repro(path: PathLike) -> ReproFile:
    """Read and checksum-verify a repro file."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise StoreError(f"cannot read repro file {path}: {error}") \
            from None
    if not isinstance(document, dict) or \
            document.get("format") != REPRO_FORMAT:
        raise StoreError(
            f"unsupported repro format in {path}: "
            f"{document.get('format') if isinstance(document, dict) else document!r}")
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise StoreError(f"malformed repro file {path}: no payload object")
    if document.get("sha256") != _digest(payload):
        raise StoreError(f"repro file {path} failed checksum verification: "
                         f"the file is corrupted")
    try:
        return ReproFile(
            seed=int(payload["seed"]),
            kind=payload["kind"],
            algorithm=payload["algorithm"],
            params={name: decode_value(value)
                    for name, value in payload["params"].items()},
            check=dict(payload["check"]),
            detail=payload.get("detail", ""),
            collection=collection_from_payload(payload["collection"]),
            gvdl_text=payload.get("gvdl_text"),
            shrink_info=dict(payload.get("shrink_info", {})),
            analysis=payload.get("analysis"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed repro file {path}: "
                         f"{type(error).__name__}: {error}") from None


def replay_repro(source: Union[PathLike, ReproFile]) -> Optional[Mismatch]:
    """Re-run a repro's exact check; ``None`` means it no longer fails."""
    repro = source if isinstance(source, ReproFile) else load_repro(source)
    spec = ALGORITHMS.get(repro.algorithm)
    if spec is None:
        raise StoreError(f"repro references unknown algorithm "
                         f"{repro.algorithm!r}")
    # JSON round-trips mpsp's pair tuples through decode_value, but a
    # params dict assembled by hand may still hold lists; normalize.
    params = {name: _normalize_param(value)
              for name, value in repro.params.items()}
    check = build_check(spec, params, repro.check)
    return check(repro.collection)


def _normalize_param(value: Any) -> Any:
    if isinstance(value, list):
        return [_normalize_param(item) for item in value]
    return value
