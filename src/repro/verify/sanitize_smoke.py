"""Shadow-sanitizer smoke driver (the CI ``sanitize-smoke`` job).

Two scenarios, both against the process backend:

1. **Clean iterate-heavy run.** WCC — a nested fixed point, the
   heaviest exerciser of the superstep frame stream — over a seeded
   churn collection under ``sanitize=True``. The sanitizer must stay
   silent, and ``total_work``/``parallel_time``/outputs must be
   byte-identical to an unsanitized process run (the ``sanitize``
   fuzzer invariant, run here as a standalone gate).

2. **Planted divergence.** A reduce kernel whose emitted cardinality
   depends on closed-over mutable state — the textbook GS-S302 hazard.
   Forked workers each see only their shard's keys while the inline
   shadow sees all of them, so the kernel's output diverges; the
   sanitizer must fail at that reduce's exact plan address on the very
   first epoch, not at the downstream capture and not as a wrong final
   answer.

Exits non-zero (via assertion) on any violation. Run as::

    python -m repro.verify.sanitize_smoke       # or: make sanitize-smoke
"""

from __future__ import annotations

from repro.core.computation import GraphComputation
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.errors import SanitizerError
from repro.verify.generator import random_churn_collection
from repro.verify.invariants import check_sanitize
from repro.verify.oracles import resolve_algorithms

SEED = 7
WORKERS = 3


class _DivergentReduce(GraphComputation):
    """Reduce whose emit count tracks how many keys *this process* saw."""

    name = "divergent-reduce"
    directed = True

    def build(self, dataflow, edges):
        seen = set()

        def logic(key, vals):
            seen.add(key)
            return list(range(len(seen)))

        keyed = edges.flat_map(lambda rec: [(rec[0], rec[1])], name="keyed")
        return keyed.reduce(logic, name="poison")


def main() -> int:
    # Scenario 1: clean WCC over churn — silent and byte-identical.
    collection = random_churn_collection(SEED)
    spec = resolve_algorithms(["wcc"])[0]
    mismatch = check_sanitize(collection, spec, {}, workers=WORKERS)
    assert mismatch is None, f"sanitize invariant violated: {mismatch}"
    print(f"sanitize-smoke: clean wcc run over {collection.num_views} "
          f"view(s) — sanitizer silent, counters byte-identical")

    # Scenario 2: planted cross-backend divergence — caught at the
    # offending reduce's address on epoch 0.
    executor = AnalyticsExecutor(workers=WORKERS, backend="process",
                                 sanitize=True)
    try:
        executor.run_on_collection(
            _DivergentReduce(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True, cost_metric="work")
    except SanitizerError as error:
        assert error.operator.endswith("/poison#2"), (
            f"divergence blamed on {error.operator!r}, expected the "
            f"planted reduce")
        assert error.timestamp == (0,), (
            f"divergence surfaced at {error.timestamp}, expected the "
            f"first epoch")
        print(f"sanitize-smoke: planted divergence caught at "
              f"operator {error.operator}, timestamp {error.timestamp}, "
              f"shard {error.shard}")
    else:
        raise AssertionError(
            "planted inline/process divergence was not detected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
