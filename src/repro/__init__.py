"""Graphsurge reproduction — graph analytics on view collections.

This library reproduces *Graphsurge: Graph Analytics on View Collections
Using Differential Computation* (Sahu & Salihoglu, SIGMOD 2021) in Python,
including the Differential Dataflow substrate it is built on.

Public surface:

* :class:`repro.core.system.Graphsurge` — the system facade: load graphs,
  run GVDL statements, execute analytics on views and view collections.
* :mod:`repro.differential` — the differential-computation engine.
* :mod:`repro.algorithms` — WCC, SCC, BFS, PageRank, Bellman-Ford, MPSP as
  differential computations.
* :mod:`repro.datasets` — seeded synthetic graph generators shaped like the
  paper's datasets.
"""

__version__ = "1.0.0"

__all__ = [
    "Graphsurge",
    "GraphComputation",
    "ExecutionMode",
    "PropertyGraph",
    "RunBudget",
    "RetryPolicy",
    "FaultPlan",
    "AnalysisReport",
    "ServeApp",
    "ServeSession",
    "analyze",
    "analyze_computation",
    "__version__",
]

_LAZY = {
    "Graphsurge": ("repro.core.system", "Graphsurge"),
    "GraphComputation": ("repro.core.computation", "GraphComputation"),
    "ExecutionMode": ("repro.core.executor", "ExecutionMode"),
    "PropertyGraph": ("repro.graph.property_graph", "PropertyGraph"),
    "RunBudget": ("repro.core.resilience", "RunBudget"),
    "RetryPolicy": ("repro.core.resilience", "RetryPolicy"),
    "FaultPlan": ("repro.core.resilience", "FaultPlan"),
    "AnalysisReport": ("repro.analyze", "AnalysisReport"),
    "ServeApp": ("repro.serve", "ServeApp"),
    "ServeSession": ("repro.serve", "ServeSession"),
    "analyze": ("repro.analyze", "analyze"),
    "analyze_computation": ("repro.analyze", "analyze_computation"),
}


def __getattr__(name):
    """Lazily resolve the facade exports (PEP 562)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
