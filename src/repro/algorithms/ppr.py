"""Personalized PageRank: integer-arithmetic ranking around a seed set.

Same fixed-point machinery as :mod:`repro.algorithms.pagerank`, but the
teleport mass returns to a **seed set** instead of spreading uniformly:
seeds share the restart probability equally, every other vertex gets a
teleport term of zero. One iteration computes::

    rank'(v) = teleport(v) + Σ_{u→v} (DAMPING_NUM * (rank(u) // deg(u))) // DAMPING_DEN

with ``teleport(v) = BASE // |S|`` for present seeds and ``0`` otherwise.

Seed normalization: requested seeds that do not exist in the view are
dropped, and the restart mass is split over the seeds actually present.
If none are present, every rank is zero — there is nowhere for restart
mass to enter the graph. The oracle mirrors both rules exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.pagerank import BASE, DAMPING_DEN, DAMPING_NUM, SCALE
from repro.core.computation import GraphComputation
from repro.errors import ConfigError


class PersonalizedPageRank(GraphComputation):
    """Fixed-iteration integer PageRank personalized to ``seeds``."""

    name = "PPR"
    directed = True

    def __init__(self, seeds: Iterable[int], iterations: int = 10,
                 quantum: int = SCALE // 1000):
        self.seeds = frozenset(int(s) for s in seeds)
        if not self.seeds:
            raise ConfigError("seeds must be a non-empty vertex list")
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        self.iterations = iterations
        self.quantum = quantum

    def build(self, dataflow, edges):
        seeds = self.seeds
        vertices = edges.flat_map(
            lambda rec: (rec[0], rec[1][0]), name="ppr.endpoints").distinct(
            name="ppr.vertices")
        degrees = edges.map(
            lambda rec: (rec[0], rec[1][0]), name="ppr.outedges"
        ).count_by_key(name="ppr.degrees")
        zeros = vertices.map(lambda v: (v, 0), name="ppr.zeros")

        # Seed normalization: only seeds present in the view carry restart
        # mass, split equally among however many of them exist.
        present = vertices.filter(lambda v: v in seeds, name="ppr.present")
        seed_count = present.map(lambda v: (0, None),
                                 name="ppr.seedkey").count_by_key(
            name="ppr.seedcount")
        share = present.map(lambda v: (0, v), name="ppr.enumerate").join(
            seed_count, lambda _k, v, n: (v, n), name="ppr.share")
        teleport = share.map(lambda rec: (rec[0], BASE // rec[1]),
                             name="ppr.teleport")
        initial = share.map(lambda rec: (rec[0], SCALE // rec[1]),
                            name="ppr.init")
        base = teleport.concat(zeros).sum_by_key(name="ppr.base")

        quantum = self.quantum
        e_arr = edges.arrange_by_key(name="ppr.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            deg = scope.enter(degrees)
            restart = scope.enter(base)
            per_edge_share = inner.join(
                deg, lambda v, rank, d: (v, rank // d), name="ppr.spread")
            contributions = per_edge_share.join_arranged(
                e,
                lambda u, amount, dw: (
                    dw[0], (DAMPING_NUM * amount) // DAMPING_DEN),
                name="ppr.contrib")
            summed = contributions.concat(restart).sum_by_key(
                name="ppr.sum")
            return summed.map(
                lambda rec: (
                    rec[0],
                    ((rec[1] + quantum // 2) // quantum) * quantum),
                name="ppr.rank")

        return initial.iterate(body, max_iters=self.iterations,
                               name="ppr.loop")
