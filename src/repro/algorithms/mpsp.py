"""Multiple-pair shortest paths (paper §7.1, computation (v)).

Given a list of ``(src, dst)`` pairs, computes the weighted shortest
distance for each pair. All sources run in one dataflow: distance records
are ``(vertex, (source, dist))`` and the per-vertex reduction keeps the
minimum distance per source, so the propagation is shared across sources
as well as across views.

The result collection carries ``((src, dst), dist)`` records, one per pair
whose destination is reachable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.computation import GraphComputation
from repro.errors import ConfigError


def _min_per_source(key, vals):
    best = {}
    # Visit order cannot reach the output: only the per-source minimum
    # survives and the result is sorted.
    for (source, dist), _mult in vals.items():  # analyze: ignore[GS-U202]
        current = best.get(source)
        if current is None or dist < current:
            best[source] = dist
    return [(source, dist) for source, dist in sorted(best.items())]


class Mpsp(GraphComputation):
    """Shortest distances for a fixed set of vertex pairs."""

    name = "MPSP"
    directed = True

    def __init__(self, pairs: Sequence[Tuple[int, int]]):
        if not pairs:
            raise ConfigError("MPSP needs at least one (src, dst) pair")
        self.pairs: List[Tuple[int, int]] = list(pairs)

    def build(self, dataflow, edges):
        sources = sorted({src for src, _dst in self.pairs})
        wanted = frozenset(self.pairs)
        # Roots exist only while their source vertex appears in the view.
        source_set = frozenset(sources)
        roots = edges.flat_map(
            lambda rec: [(rec[0], (rec[0], 0))]
            if rec[0] in source_set else [],
            name="mpsp.cand").distinct(name="mpsp.roots")

        e_arr = edges.arrange_by_key(name="mpsp.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            r = scope.enter(roots)
            step = inner.join_arranged(
                e,
                lambda v, sd, dw: (dw[0], (sd[0], sd[1] + dw[1])),
                name="mpsp.step")
            return step.concat(r).reduce(_min_per_source, name="mpsp.min")

        dists = roots.iterate(body, name="mpsp.loop")
        return dists.flat_map(
            lambda rec: [((rec[1][0], rec[0]), rec[1][1])]
            if (rec[1][0], rec[0]) in wanted else [],
            name="mpsp.pairs")
