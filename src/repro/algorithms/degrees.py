"""Degree computations — the paper's example of simple, non-iterative
analytics (§3.1.2 mentions "computing the max degree of a graph").

These exercise the single-pass path of the engine: no iterate scope, just
keyed reductions maintained differentially across views.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation


class OutDegrees(GraphComputation):
    """``(vertex, out_degree)`` for every vertex with outgoing edges."""

    name = "DEG"
    directed = True

    def build(self, dataflow, edges):
        return edges.map(lambda rec: (rec[0], rec[1][0]),
                         name="deg.out").count_by_key(name="deg.count")


class MaxDegree(GraphComputation):
    """A single record ``(0, max out-degree)`` for the view."""

    name = "MAXDEG"
    directed = True

    def build(self, dataflow, edges):
        degrees = edges.map(lambda rec: (rec[0], rec[1][0]),
                            name="maxdeg.out").count_by_key(
            name="maxdeg.count")
        return degrees.map(lambda rec: (0, rec[1]),
                           name="maxdeg.rekey").max_by_key(name="maxdeg.max")
