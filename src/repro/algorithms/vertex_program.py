"""A vertex-centric (Pregel-style) programming layer.

The paper's users write raw differential dataflows (Listing 2); many graph
programmers prefer the vertex-centric idiom. :class:`VertexProgram` maps it
onto the engine: subclasses provide per-vertex seeds, a per-edge message
function, and a per-vertex merge; the framework builds the iterate loop and
inherits all of Graphsurge's cross-view sharing for free.

Example — BFS in four lines::

    class VertexBfs(VertexProgram):
        name = "BFS-VP"
        def seeds(self, vertex): return 0 if vertex == self.source else None
        def message(self, src, value, dst, weight): return value + 1
        def merge(self, vertex, values): return min(values)

Semantics per superstep: every vertex with a value sends ``message(...)``
along each outgoing edge; each vertex's next value is
``merge(vertex, seeds ∪ incoming messages)`` — iterated to the fixed
point (or ``max_iters``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.computation import GraphComputation


class VertexProgram(GraphComputation):
    """Base class for vertex-centric computations."""

    #: Optional iteration clamp (None = run to the fixed point).
    max_iters: Optional[int] = None

    # -- the subclass API ----------------------------------------------------

    def seeds(self, vertex: int) -> Any:
        """Initial value for ``vertex`` (None = no seed)."""
        return None

    def message(self, src: int, value: Any, dst: int,
                weight: int) -> Any:
        """Message sent along ``src -> dst``; None sends nothing."""
        raise NotImplementedError

    def merge(self, vertex: int, values: Dict[Any, int]) -> Any:
        """Fold seeds + incoming messages into the vertex's next value.

        ``values`` maps candidate values to multiplicities; return the
        kept value (or None to leave the vertex without a value).
        """
        raise NotImplementedError

    # -- framework ---------------------------------------------------------------

    def build(self, dataflow, edges):
        program = self
        vertices = edges.flat_map(
            lambda rec: (rec[0], rec[1][0]), name="vp.ends").distinct(
            name="vp.vertices")
        seeds = vertices.flat_map(
            lambda v: [] if program.seeds(v) is None
            else [(v, program.seeds(v))],
            name="vp.seeds")

        def merge_logic(key, values):
            merged = program.merge(key, values)
            return [] if merged is None else [merged]

        e_arr = edges.arrange_by_key(name="vp.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            s = scope.enter(seeds)
            messages = inner.join_arranged(
                e,
                lambda u, value, dw: (
                    dw[0], program.message(u, value, dw[0], dw[1])),
                name="vp.messages").filter(
                lambda rec: rec[1] is not None, name="vp.sent")
            return messages.concat(s).reduce(merge_logic, name="vp.merge")

        return seeds.iterate(body, max_iters=self.max_iters,
                             name="vp.loop")


class VertexBfs(VertexProgram):
    """BFS expressed vertex-centrically (reference: repro.algorithms.Bfs)."""

    name = "BFS-VP"
    directed = True

    def __init__(self, source: int):
        self.source = source

    def seeds(self, vertex):
        return 0 if vertex == self.source else None

    def message(self, src, value, dst, weight):
        return value + 1

    def merge(self, vertex, values):
        return min(values)


class VertexWcc(VertexProgram):
    """WCC expressed vertex-centrically (reference: repro.algorithms.Wcc)."""

    name = "WCC-VP"
    directed = False

    def seeds(self, vertex):
        return vertex

    def message(self, src, value, dst, weight):
        return value

    def merge(self, vertex, values):
        return min(values)


class VertexSssp(VertexProgram):
    """Weighted shortest paths, vertex-centrically."""

    name = "SSSP-VP"
    directed = True

    def __init__(self, source: int):
        self.source = source

    def seeds(self, vertex):
        return 0 if vertex == self.source else None

    def message(self, src, value, dst, weight):
        return value + weight

    def merge(self, vertex, values):
        return min(values)
