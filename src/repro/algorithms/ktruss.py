"""k-truss decomposition (membership in the k-truss).

The k-truss is the maximal subgraph in which every edge participates in at
least ``k - 2`` triangles *within that subgraph* (edges undirected,
canonicalized to ``(a, b)`` with ``a < b`` exactly as in
:mod:`repro.algorithms.triangles`). Peeling formulation as a fixed point:
start from all simple edges; each round recounts every surviving edge's
support over the surviving subgraph and drops the under-supported ones.
Deletions cascade — removing one edge can strip the triangles that kept
its neighbours alive, so a non-iterative "count once, filter once" pass is
wrong (the pin tests lock this in).

Result records: ``((a, b), k)`` for the edges of the k-truss. Like MPSP,
the result is keyed by pairs rather than vertices; every downstream
surface (GVDL, serve, stream) treats keys opaquely.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation
from repro.errors import ConfigError


class KTruss(GraphComputation):
    """Edges of the k-truss of the canonicalized simple graph."""

    name = "KTRUSS"
    directed = True  # canonicalization handles symmetry itself

    def __init__(self, k: int):
        if k < 2:
            raise ConfigError("k must be >= 2")
        self.k = k
        self.name = f"KTRUSS{k}"

    def build(self, dataflow, edges):
        k = self.k
        need = k - 2
        canonical = edges.map(
            lambda rec: (min(rec[0], rec[1][0]), max(rec[0], rec[1][0])),
            name="ktruss.canon").filter(
            lambda rec: rec[0] != rec[1], name="ktruss.noself").distinct(
            name="ktruss.simple")
        seed = canonical.map(lambda rec: (rec, None), name="ktruss.seed")

        def body(inner, scope):
            pairs = inner.map(lambda rec: rec[0], name="ktruss.alive")
            # Per-round triangle enumeration over the surviving subgraph —
            # the same wedge-at-smallest-endpoint self-join as Triangles,
            # but against an arrangement rebuilt from the loop variable.
            arr = pairs.arrange_by_key(name="ktruss.adj")
            wedges = pairs.join_arranged(
                arr,
                lambda a, b, c: ((min(b, c), max(b, c)), a),
                name="ktruss.wedge").filter(
                lambda rec: rec[0][0] != rec[0][1],
                name="ktruss.properwedge").distinct(name="ktruss.wedgeset")
            closing = pairs.map(lambda rec: (rec, None),
                                name="ktruss.closekey")
            closing_arr = closing.arrange_by_key(name="ktruss.closeidx")
            triangles = wedges.join_arranged(
                closing_arr, lambda pair, apex, _m: (apex, pair),
                name="ktruss.close")
            # A triangle a < b < c (apex a, pair (b, c)) supports its three
            # sides (a,b), (a,c), (b,c).
            sides = triangles.flat_map(
                lambda rec: [((rec[0], rec[1][0]), 1),
                             ((rec[0], rec[1][1]), 1),
                             (rec[1], 1)],
                name="ktruss.sides")
            # Left-outer against the surviving edges: a triangle-free edge
            # must still surface with support 0 (it survives when k == 2).
            zero = pairs.map(lambda rec: (rec, 0), name="ktruss.zero")
            support = sides.concat(zero).sum_by_key(name="ktruss.support")
            return support.filter(
                lambda rec: rec[1] >= need, name="ktruss.keep").map(
                lambda rec: (rec[0], None), name="ktruss.tag")

        peeled = seed.iterate(body, name="ktruss.loop")
        return peeled.map(lambda rec: (rec[0], k), name="ktruss.result")
