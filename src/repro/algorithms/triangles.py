"""Per-vertex triangle counting.

Edges are canonicalized to undirected ``(a, b)`` with ``a < b``; a triangle
``a < b < c`` is a wedge ``(a,b), (a,c)`` closed by ``(b,c)``. The dataflow
enumerates wedges at the smallest endpoint and semijoins against the edge
set — the standard relational triangle query, maintained differentially
across views.

Result records: ``(vertex, triangle_count)`` for vertices in >= 1 triangle.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation


class Triangles(GraphComputation):
    """Counts, per vertex, the triangles it participates in."""

    name = "TRI"
    directed = True  # canonicalization handles symmetry itself

    def build(self, dataflow, edges):
        canonical = edges.map(
            lambda rec: (min(rec[0], rec[1][0]), max(rec[0], rec[1][0])),
            name="tri.canon").filter(
            lambda rec: rec[0] != rec[1], name="tri.noself").distinct(
            name="tri.simple")
        # Wedges at the apex a: pairs of neighbours b < c. The self-join
        # reads one shared arrangement of the canonical edge set (joining
        # the pre-arrangement stream against its own arrangement keeps
        # pairing exactly-once; see Collection.join_arranged).
        canon_arr = canonical.arrange_by_key(name="tri.adj")
        wedges = canonical.join_arranged(
            canon_arr,
            lambda a, b, c: ((min(b, c), max(b, c)), a),
            name="tri.wedge").filter(
            lambda rec: rec[0][0] != rec[0][1], name="tri.properwedge")
        # Each unordered neighbour pair appears twice ((b,c) and (c,b));
        # halve by keeping one orientation via distinct on (pair, apex).
        wedges = wedges.distinct(name="tri.wedgeset")
        # The closing relation is keyed by the full (a, b) pair — a second
        # index over the same edge set, arranged once as well.
        closing = canonical.map(lambda rec: (rec, None), name="tri.closekey")
        closing_arr = closing.arrange_by_key(name="tri.closeidx")
        triangles = wedges.join_arranged(
            closing_arr, lambda pair, apex, _m: (apex, pair),
            name="tri.close")
        per_apex = triangles.flat_map(
            lambda rec: [(rec[0], 1), (rec[1][0], 1), (rec[1][1], 1)],
            name="tri.members")
        return per_apex.map(lambda rec: (rec[0], None),
                            name="tri.unit").count_by_key(name="tri.count")
