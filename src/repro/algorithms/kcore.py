"""k-core decomposition (membership in the k-core).

The k-core is the maximal subgraph in which every vertex has degree >= k
(edges treated as undirected). Classic peeling formulation as a fixed
point: start from all vertices; each round keeps the vertices whose degree
*within the surviving subgraph* is at least k. Deletions cascade — an
iterative computation that differentially shares the cascade across views.

Result records: ``(vertex, k)`` for the members of the k-core.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation
from repro.errors import ConfigError


class KCore(GraphComputation):
    """Vertices of the k-core of the (symmetrized) view."""

    name = "KCORE"
    directed = False  # degree counts both directions

    def __init__(self, k: int):
        if k < 1:
            raise ConfigError("k must be >= 1")
        self.k = k
        self.name = f"KCORE{k}"

    def build(self, dataflow, edges):
        k = self.k
        # Distinct symmetrized pairs: parallel/antiparallel edges must not
        # double-count a neighbour's contribution to the degree.
        pairs = edges.map(lambda rec: (rec[0], rec[1][0]),
                          name="kcore.pairs").distinct(name="kcore.simple")
        vertices = pairs.map(lambda rec: rec[0], name="kcore.srcs").distinct(
            name="kcore.verts")
        seed = vertices.map(lambda v: (v, k), name="kcore.seed")

        pairs_arr = pairs.arrange_by_key(name="kcore.edges")

        def body(inner, scope):
            e = pairs_arr.enter(scope)
            alive = inner.map(lambda rec: rec[0], name="kcore.alive")
            # Edges whose BOTH endpoints survive.
            from_alive = e.semijoin(alive, name="kcore.esrc")
            both_alive = from_alive.map(
                lambda rec: (rec[1], rec[0]), name="kcore.flip").semijoin(
                alive, name="kcore.edst")
            degrees = both_alive.count_by_key(name="kcore.deg")
            return degrees.filter(lambda rec: rec[1] >= k,
                                  name="kcore.keep").map(
                lambda rec: (rec[0], k), name="kcore.tag")

        return seed.iterate(body, name="kcore.loop")
