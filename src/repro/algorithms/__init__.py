"""The paper's five evaluation computations, plus Bellman-Ford (§2/§5)
and the community & scoring pack (label propagation, personalized
PageRank, k-truss, composite scoring; see docs/algorithms.md).

All are implemented against the :class:`repro.core.computation.GraphComputation`
API as ordinary differential dataflow programs — no algorithm-specific
maintenance logic. :mod:`repro.algorithms.reference` provides plain-Python
implementations used to validate the dataflow results in tests.
"""

from repro.algorithms.bfs import Bfs
from repro.algorithms.bellman_ford import BellmanFord
from repro.algorithms.clustering import ClusteringCoefficient
from repro.algorithms.degrees import MaxDegree, OutDegrees
from repro.algorithms.kcore import KCore
from repro.algorithms.ktruss import KTruss
from repro.algorithms.label_propagation import LabelPropagation
from repro.algorithms.mpsp import Mpsp
from repro.algorithms.pagerank import PageRank
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.scc import Scc
from repro.algorithms.scoring import CompositeScore
from repro.algorithms.triangles import Triangles
from repro.algorithms.vertex_program import (
    VertexBfs,
    VertexProgram,
    VertexSssp,
    VertexWcc,
)
from repro.algorithms.wcc import Wcc

__all__ = [
    "Bfs",
    "BellmanFord",
    "ClusteringCoefficient",
    "CompositeScore",
    "KCore",
    "KTruss",
    "LabelPropagation",
    "MaxDegree",
    "Mpsp",
    "OutDegrees",
    "PageRank",
    "PersonalizedPageRank",
    "Scc",
    "Triangles",
    "VertexBfs",
    "VertexProgram",
    "VertexSssp",
    "VertexWcc",
    "Wcc",
]
