"""The paper's five evaluation computations, plus Bellman-Ford (§2/§5).

All are implemented against the :class:`repro.core.computation.GraphComputation`
API as ordinary differential dataflow programs — no algorithm-specific
maintenance logic. :mod:`repro.algorithms.reference` provides plain-Python
implementations used to validate the dataflow results in tests.
"""

from repro.algorithms.bfs import Bfs
from repro.algorithms.bellman_ford import BellmanFord
from repro.algorithms.clustering import ClusteringCoefficient
from repro.algorithms.degrees import MaxDegree, OutDegrees
from repro.algorithms.kcore import KCore
from repro.algorithms.mpsp import Mpsp
from repro.algorithms.pagerank import PageRank
from repro.algorithms.scc import Scc
from repro.algorithms.triangles import Triangles
from repro.algorithms.vertex_program import (
    VertexBfs,
    VertexProgram,
    VertexSssp,
    VertexWcc,
)
from repro.algorithms.wcc import Wcc

__all__ = [
    "Bfs",
    "BellmanFord",
    "ClusteringCoefficient",
    "KCore",
    "MaxDegree",
    "Mpsp",
    "OutDegrees",
    "PageRank",
    "Scc",
    "Triangles",
    "VertexBfs",
    "VertexProgram",
    "VertexSssp",
    "VertexWcc",
    "Wcc",
]
