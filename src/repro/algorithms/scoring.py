"""Composite vertex scoring: several metrics joined into one ranked output.

Computes, per vertex, a weighted integer blend of three structural
metrics — out-degree, triangle participation, and (centi-rank) PageRank —
then ranks every vertex globally::

    score(v) = degree_weight * outdeg(v)
             + triangle_weight * triangles(v)
             + rank_weight * (pagerank(v) // (SCALE // 100))

Result records: ``(vertex, (position, score))`` where position 1 is the
best score; ties break toward the **smaller vertex id** (positions are
dense, 1..N). Integer weights and centi-rank quantization keep record
equality exact so difference traces stay finite.

A composition stress test: three sub-dataflows (one iterative) feed two
left-outer joins and a single global ranking reduce, all maintained
differentially across the view collection.
"""

from __future__ import annotations

from repro.algorithms.pagerank import SCALE, PageRank
from repro.algorithms.triangles import Triangles
from repro.core.computation import GraphComputation
from repro.errors import ConfigError

#: PageRank enters the blend in hundredths of a unit rank, keeping the
#: blended score in the same ballpark as small degree/triangle counts.
CENTIRANK = SCALE // 100


def _rank_positions(key, vals):
    """Order (-score, vertex) ascending; emit dense 1-based positions."""
    ordered = sorted(vals)
    out = []
    for position, (neg_score, vertex) in enumerate(ordered, start=1):
        out.append((vertex, position, -neg_score))
    return out


class CompositeScore(GraphComputation):
    """Globally ranked weighted blend of degree/triangle/PageRank scores."""

    name = "SCORE"
    directed = True

    def __init__(self, degree_weight: int = 1, triangle_weight: int = 1,
                 rank_weight: int = 1, iterations: int = 5):
        for label, weight in (("degree_weight", degree_weight),
                              ("triangle_weight", triangle_weight),
                              ("rank_weight", rank_weight)):
            if weight < 0:
                raise ConfigError(f"{label} must be >= 0")
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        self.degree_weight = degree_weight
        self.triangle_weight = triangle_weight
        self.rank_weight = rank_weight
        self.iterations = iterations

    def build(self, dataflow, edges):
        dw = self.degree_weight
        tw = self.triangle_weight
        rw = self.rank_weight

        vertices = edges.flat_map(
            lambda rec: (rec[0], rec[1][0]), name="score.endpoints"
        ).distinct(name="score.vertices")
        zeros = vertices.map(lambda v: (v, 0), name="score.zeros")

        # Metric 1: out-degree (multiplicity-counting, like OutDegrees),
        # left-outer zeroed so sink vertices still score.
        degrees = edges.map(lambda rec: (rec[0], None),
                            name="score.outedge").count_by_key(
            name="score.outdeg")
        deg_full = degrees.concat(zeros).sum_by_key(name="score.degfull")

        # Metric 2: triangle participation, zero when triangle-free.
        triangles = Triangles().build(dataflow, edges)
        tri_full = triangles.concat(zeros).sum_by_key(name="score.trifull")

        # Metric 3: PageRank covers every vertex by construction.
        ranks = PageRank(iterations=self.iterations).build(dataflow, edges)

        blended = deg_full.join(
            tri_full, lambda v, deg, tri: (v, dw * deg + tw * tri),
            name="score.degtri").join(
            ranks,
            lambda v, partial, rank: (v, partial + rw * (rank // CENTIRANK)),
            name="score.blend")

        # Global ranking: gather every (score, vertex) under one key and
        # emit dense positions; re-key by vertex for the output map.
        gathered = blended.map(lambda rec: (0, (-rec[1], rec[0])),
                               name="score.gather")
        positions = gathered.reduce(_rank_positions, name="score.order")
        return positions.map(lambda rec: (rec[1][0], (rec[1][1], rec[1][2])),
                             name="score.result")
