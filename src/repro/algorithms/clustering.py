"""Local clustering coefficient.

For each vertex, the fraction of its (undirected) neighbour pairs that are
connected: ``cc(v) = triangles(v) / C(deg(v), 2)``. Results are exact
rationals, reported as ``(vertex, (triangles, possible_pairs))`` so record
equality is exact and difference traces stay finite (divide at the edge of
the system, not inside it).

A composition exercise: reuses the triangle-counting and degree dataflows
and joins their outputs — everything stays incremental across views.
"""

from __future__ import annotations

from repro.algorithms.triangles import Triangles
from repro.core.computation import GraphComputation


class ClusteringCoefficient(GraphComputation):
    """``(vertex, (triangle_count, possible_pairs))`` per vertex with
    degree >= 2; vertices in no triangle report a zero count."""

    name = "LCC"
    directed = True  # undirected handling is internal (canonical pairs)

    def build(self, dataflow, edges):
        triangles = Triangles().build(dataflow, edges)
        canonical = edges.map(
            lambda rec: (min(rec[0], rec[1][0]), max(rec[0], rec[1][0])),
            name="lcc.canon").filter(
            lambda rec: rec[0] != rec[1], name="lcc.noself").distinct(
            name="lcc.simple")
        degrees = canonical.flat_map(
            lambda rec: [(rec[0], None), (rec[1], None)],
            name="lcc.incident").count_by_key(name="lcc.degree")
        eligible = degrees.filter(lambda rec: rec[1] >= 2,
                                  name="lcc.eligible")
        pairs = eligible.map(
            lambda rec: (rec[0], rec[1] * (rec[1] - 1) // 2),
            name="lcc.pairs")
        # Left-outer flavour: vertices with no triangles get count 0.
        zero = pairs.map(lambda rec: (rec[0], 0), name="lcc.zero")
        counts = triangles.concat(zero).sum_by_key(name="lcc.count")
        return counts.join(
            pairs, lambda v, tri, possible: (v, (tri, possible)),
            name="lcc.ratio")
