"""Weakly connected components.

Classic differential formulation: every vertex starts labelled with its own
id; labels propagate along (symmetrized) edges; each vertex keeps the
minimum label seen; at the fixed point the label is the component id (the
minimum vertex id of the component).
"""

from __future__ import annotations

from repro.core.computation import GraphComputation


class Wcc(GraphComputation):
    """Per-vertex minimum-label propagation to a fixed point."""

    name = "WCC"
    directed = False  # the executor feeds both edge directions

    def build(self, dataflow, edges):
        vertices = edges.flat_map(
            lambda rec: (rec[0], rec[1][0]), name="wcc.vertices").distinct(
            name="wcc.vset")
        labels = vertices.map(lambda v: (v, v), name="wcc.seed")

        # One shared arrangement of the edges, reused every iteration.
        e_arr = edges.arrange_by_key(name="wcc.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            seed = scope.enter(labels)
            propagated = inner.join_arranged(
                e, lambda u, label, dw: (dw[0], label), name="wcc.prop")
            return propagated.concat(seed).min_by_key(name="wcc.min")

        return labels.iterate(body, name="wcc.loop")
