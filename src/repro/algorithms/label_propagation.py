"""Community detection by synchronous label propagation.

Every vertex starts labelled with its own id; each round, every vertex
adopts the label held by the plurality of its (undirected, simple-graph)
neighbours, ties broken toward the **smallest** label. The loop stops at
a fixed point or after ``rounds`` synchronous rounds — synchronous LPA
can oscillate with period two (a bare path does), so the round cap is
part of the semantics, exactly like PageRank's fixed iteration count.

Determinism is the whole game here: the classic asynchronous LPA breaks
ties randomly, which would poison difference traces. The plurality rule
``min by (-count, label)`` is a pure function of the neighbour multiset,
so the computation is an ordinary differential program shared across
views.

Result records: ``(vertex, community_label)`` for every non-isolated
vertex.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation
from repro.errors import ConfigError


def _plurality_label(key, vals):
    """Most frequent neighbour label; ties break to the smallest label."""
    best = None
    # Only the (count, label) minimum survives; visit order is immaterial.
    for label, count in vals.items():  # analyze: ignore[GS-U202]
        rank = (-count, label)
        if best is None or rank < best:
            best = rank
    return [best[1]]


class LabelPropagation(GraphComputation):
    """Synchronous plurality label propagation with min-label ties."""

    name = "LPA"
    directed = False  # the executor feeds both edge directions

    def __init__(self, rounds: int = 8):
        if rounds < 1:
            raise ConfigError("rounds must be >= 1")
        self.rounds = rounds

    def build(self, dataflow, edges):
        # Distinct symmetrized pairs: parallel edges must not give a
        # neighbour's label extra votes, and self-loops never vote.
        pairs = edges.map(lambda rec: (rec[0], rec[1][0]),
                          name="lpa.pairs").filter(
            lambda rec: rec[0] != rec[1], name="lpa.noself").distinct(
            name="lpa.simple")
        # Every endpoint appears as a source because pairs are symmetric.
        vertices = pairs.map(lambda rec: rec[0], name="lpa.srcs").distinct(
            name="lpa.verts")
        labels = vertices.map(lambda v: (v, v), name="lpa.seed")

        adj = pairs.arrange_by_key(name="lpa.adj")

        def body(inner, scope):
            e = adj.enter(scope)
            incoming = inner.join_arranged(
                e, lambda u, label, v: (v, label), name="lpa.send")
            return incoming.reduce(_plurality_label, name="lpa.adopt")

        return labels.iterate(body, max_iters=self.rounds, name="lpa.loop")
