"""Breadth-first search (hop distances from a source vertex).

Per the paper's experimental setup, the default source is the first vertex
that has an outgoing edge. The source can also be fixed explicitly, which
keeps it stable across the views of a collection (recommended: a dynamic
source may differ between views and destroy sharing).
"""

from __future__ import annotations

from typing import Optional

from repro.core.computation import GraphComputation


class Bfs(GraphComputation):
    """Minimum hop count from the source; unreachable vertices get nothing."""

    name = "BFS"
    directed = True

    def __init__(self, source: Optional[int] = None):
        self.source = source

    def build(self, dataflow, edges):
        if self.source is not None:
            fixed = self.source
            roots = edges.flat_map(
                lambda rec: [(rec[0], 0)] if rec[0] == fixed else [],
                name="bfs.fixedroot").distinct(name="bfs.root")
        else:
            # "First vertex to contain an outgoing edge": the minimum source
            # id present in the edge stream, maintained differentially.
            roots = edges.map(
                lambda rec: (0, rec[0]), name="bfs.srcs").min_by_key(
                name="bfs.minsrc").map(
                lambda rec: (rec[1], 0), name="bfs.root")

        # The edges relation is arranged once at the root and shared by
        # every join in the dataflow (Differential Dataflow's
        # arrange_by_key); the loop reads the same trace each iteration.
        e_arr = edges.arrange_by_key(name="bfs.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            r = scope.enter(roots)
            step = inner.join_arranged(
                e, lambda u, dist, dw: (dw[0], dist + 1), name="bfs.step")
            return step.concat(r).min_by_key(name="bfs.min")

        return roots.iterate(body, name="bfs.loop")
