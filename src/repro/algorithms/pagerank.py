"""PageRank with fixed-point (integer) arithmetic.

Ranks are integers scaled by ``SCALE``; one iteration computes::

    rank'(v) = BASE + Σ_{u→v} (DAMPING_NUM * (rank(u) // deg(u))) // DAMPING_DEN

Integer arithmetic keeps record equality exact, so difference traces stay
finite and the engine can detect convergence. The computation is run for a
fixed number of rounds (default 10), as is customary for PageRank on
dataflow systems; quantization typically converges it earlier.

PageRank is the paper's canonical *unstable* computation: a single edge
change alters ``deg(u)`` and therefore **every** message ``u`` sends, which
is why running it differentially across dissimilar views loses to scratch
(paper §5, Table 2).
"""

from __future__ import annotations

from repro.core.computation import GraphComputation
from repro.errors import ConfigError

SCALE = 1_000_000
DAMPING_NUM = 85
DAMPING_DEN = 100
BASE = (SCALE * (DAMPING_DEN - DAMPING_NUM)) // DAMPING_DEN  # 0.15·SCALE


class PageRank(GraphComputation):
    """Fixed-iteration integer PageRank over the view's vertices.

    ``quantum`` rounds each iteration's ranks to a grid (default 1/1000 of
    a unit rank). Quantization serves the same role as a convergence
    tolerance in floating-point PageRank: sub-quantum perturbations die out
    instead of cascading forever, so the difference traces reflect only
    meaningful rank changes.
    """

    name = "PR"
    directed = True

    def __init__(self, iterations: int = 10, quantum: int = SCALE // 1000):
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        self.iterations = iterations
        self.quantum = quantum

    def build(self, dataflow, edges):
        vertices = edges.flat_map(
            lambda rec: (rec[0], rec[1][0]), name="pr.endpoints").distinct(
            name="pr.vertices")
        degrees = edges.map(
            lambda rec: (rec[0], rec[1][0]), name="pr.outedges"
        ).count_by_key(name="pr.degrees")
        initial = vertices.map(lambda v: (v, SCALE), name="pr.init")
        zeros = vertices.map(lambda v: (v, 0), name="pr.zeros")

        quantum = self.quantum
        e_arr = edges.arrange_by_key(name="pr.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            deg = scope.enter(degrees)
            zero = scope.enter(zeros)
            per_edge_share = inner.join(
                deg, lambda v, rank, d: (v, rank // d), name="pr.share")
            contributions = per_edge_share.join_arranged(
                e,
                lambda u, share, dw: (
                    dw[0], (DAMPING_NUM * share) // DAMPING_DEN),
                name="pr.contrib")
            summed = contributions.concat(zero).sum_by_key(name="pr.sum")
            return summed.map(
                lambda rec: (
                    rec[0],
                    ((BASE + rec[1] + quantum // 2) // quantum) * quantum),
                name="pr.rank")

        return initial.iterate(body, max_iters=self.iterations,
                               name="pr.loop")
