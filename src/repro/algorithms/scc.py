"""Strongly connected components — Orzan's doubly-iterative Coloring
algorithm (paper §7.1, computation (ii); Orzan 2004).

Outer loop (peeling rounds), each round containing two inner fixed points:

1. **Color propagation** (forward): every active vertex starts with its own
   id; the maximum id propagates along active edges. At the fixed point,
   ``color(v)`` is the largest active vertex that reaches ``v``.
2. **Roots**: vertices with ``color(v) == v``.
3. **Membership** (backward): from each root ``r``, follow edges backwards,
   restricted to vertices with ``color == r``. The reached set is exactly
   SCC(r); those vertices settle with SCC id ``r`` (the maximum id in the
   component) and deactivate. The outer loop repeats on the remainder.

The outer loop's variable carries per-vertex status records:
``(v, ("V",))`` while active, ``(v, ("A", scc_id))`` once settled. Nested
``iterate`` scopes give the computation 3-dimensional timestamps
``(view, round, step)`` — the paper's doubly-iterative structure, shared
differentially across views like everything else.
"""

from __future__ import annotations

from repro.core.computation import GraphComputation

ACTIVE = ("V",)


class Scc(GraphComputation):
    """Per-vertex SCC ids (= the maximum vertex id in the component)."""

    name = "SCC"
    directed = True

    def build(self, dataflow, edges):
        pairs = edges.map(lambda rec: (rec[0], rec[1][0]), name="scc.pairs")
        vertices = pairs.flat_map(lambda rec: (rec[0], rec[1]),
                                  name="scc.ends").distinct(name="scc.verts")
        status0 = vertices.map(lambda v: (v, ACTIVE), name="scc.status0")
        # The edges relation is arranged once at the root; every peeling
        # round's semijoin streams its (small) active-vertex set against
        # this one shared trace.
        pairs_arr = pairs.arrange_by_key(name="scc.edges")

        def outer(inner, oscope):
            e_all = pairs_arr.enter(oscope)
            active = inner.filter(
                lambda rec: rec[1] == ACTIVE, name="scc.active").map(
                lambda rec: rec[0], name="scc.activev")
            assigned = inner.filter(
                lambda rec: rec[1] != ACTIVE, name="scc.assigned")
            # Edges with both endpoints still active.
            e_src = e_all.semijoin(active, name="scc.esrc")
            e_act = e_src.map(lambda rec: (rec[1], rec[0]),
                              name="scc.flip").semijoin(
                active, name="scc.edst").map(
                lambda rec: (rec[1], rec[0]), name="scc.unflip")
            e_rev = e_act.map(lambda rec: (rec[1], rec[0]), name="scc.rev")
            seed = active.map(lambda v: (v, v), name="scc.seed")
            # Per-round arrangements of the surviving subgraph, shared
            # into both inner fixed points.
            e_act_arr = e_act.arrange_by_key(name="scc.eact")
            e_rev_arr = e_rev.arrange_by_key(name="scc.erev")

            def color_body(cinner, cscope):
                ce = e_act_arr.enter(cscope)
                cseed = cscope.enter(seed)
                prop = cinner.join_arranged(
                    ce, lambda u, color, v: (v, color), name="scc.cprop")
                return prop.concat(cseed).max_by_key(name="scc.cmax")

            colors = seed.iterate(color_body, name="scc.colors")
            roots = colors.filter(lambda rec: rec[0] == rec[1],
                                  name="scc.roots")

            def member_body(minner, mscope):
                mrev = e_rev_arr.enter(mscope)
                mcolors = mscope.enter(colors)
                mroots = mscope.enter(roots)
                # (w, c) member and edge u->w: u is a candidate for SCC c.
                cand = minner.join_arranged(
                    mrev, lambda w, color, u: (u, color), name="scc.mcand")
                valid = cand.join(
                    mcolors, lambda u, color, own: (u, color, own),
                    name="scc.mcheck").filter(
                    lambda rec: rec[1] == rec[2], name="scc.mok").map(
                    lambda rec: (rec[0], rec[1]), name="scc.mkeep")
                return valid.concat(mroots).distinct(name="scc.mset")

            members = roots.iterate(member_body, name="scc.members")
            settled = members.map(lambda rec: (rec[0], ("A", rec[1])),
                                  name="scc.settle")
            member_keys = members.map(lambda rec: rec[0], name="scc.mkeys")
            still_active = active.map(
                lambda v: (v, ACTIVE), name="scc.vtag").antijoin(
                member_keys, name="scc.remain")
            return assigned.concat(settled, still_active)

        status = status0.iterate(outer, name="scc.outer")
        return status.filter(lambda rec: rec[1] != ACTIVE,
                             name="scc.final").map(
            lambda rec: (rec[0], rec[1][1]), name="scc.out")
