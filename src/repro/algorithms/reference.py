"""Plain-Python reference implementations for validating the dataflow
algorithms.

Each reference consumes an edge list and mirrors the exact semantics of
its differential counterpart — including PageRank's integer arithmetic —
so test comparisons are exact. Edge lists may be ``(src, dst, weight)``
triples or the materialized-view form ``(edge_id, src, dst, weight)``
(see :func:`view_edge_list`); every oracle accepts both.

All oracles share a uniform calling convention, ``oracle(edges,
**params)``, where ``params`` are keyword arguments named exactly like
the matching :class:`~repro.core.computation.GraphComputation`
constructor parameters. The fuzzing harness (:mod:`repro.verify`) relies
on this to cross-check every algorithm generically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithms.pagerank import BASE, DAMPING_DEN, DAMPING_NUM, SCALE

EdgeList = Iterable[Tuple[int, ...]]


def _as_triples(edges: EdgeList) -> List[Tuple[int, int, int]]:
    """Normalize to ``(src, dst, weight)`` triples.

    Accepts 3-tuples as-is and the 4-tuple ``(edge_id, src, dst, weight)``
    form produced by view materialization.
    """
    out: List[Tuple[int, int, int]] = []
    for record in edges:
        if len(record) == 3:
            out.append(tuple(record))
        elif len(record) == 4:
            out.append((record[1], record[2], record[3]))
        else:
            raise ValueError(
                f"edge record must be (src, dst, w) or (eid, src, dst, w), "
                f"got {record!r}")
    return out


def view_edge_list(collection, index: int) -> List[Tuple[int, int, int]]:
    """The full edge list of view ``index`` as oracle-ready triples.

    Expands multiplicities (a diff entry with multiplicity 2 yields two
    triples) so multigraph semantics — e.g. out-degree counts — survive
    the conversion. Sorted for determinism.
    """
    triples: List[Tuple[int, int, int]] = []
    for (_eid, src, dst, w), mult in sorted(
            collection.full_view_edges(index).items()):
        triples.extend([(src, dst, w)] * mult)
    return triples


def _vertices(edges: List[Tuple[int, int, int]]) -> Set[int]:
    out: Set[int] = set()
    for src, dst, _w in edges:
        out.add(src)
        out.add(dst)
    return out


def reference_wcc(edges: EdgeList) -> Dict[int, int]:
    """Component id = minimum vertex id, edges treated as undirected."""
    edges = _as_triples(edges)
    parent: Dict[int, int] = {v: v for v in _vertices(edges)}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for src, dst, _w in edges:
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[ra] = rb
    lowest: Dict[int, int] = {}
    for v in parent:
        root = find(v)
        lowest[root] = min(lowest.get(root, v), v)
    return {v: lowest[find(v)] for v in parent}


def reference_bfs(edges: EdgeList,
                  source: Optional[int] = None) -> Dict[int, int]:
    """Hop distances from ``source`` (default: minimum source id present).

    Unreachable vertices are absent from the result.
    """
    edges = _as_triples(edges)
    if not edges:
        return {}
    if source is None:
        source = min(src for src, _dst, _w in edges)
    adjacency: Dict[int, List[int]] = {}
    for src, dst, _w in edges:
        adjacency.setdefault(src, []).append(dst)
    if source not in adjacency:
        # Mirrors the dataflow version: the root record exists only while
        # the source has an outgoing edge in the view.
        return {}
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def reference_sssp(edges: EdgeList,
                   source: Optional[int] = None) -> Dict[int, int]:
    """Weighted shortest distances (Bellman-Ford semantics)."""
    edges = _as_triples(edges)
    if not edges:
        return {}
    if source is None:
        source = min(src for src, _dst, _w in edges)
    if source not in {src for src, _dst, _w in edges}:
        return {}
    verts = _vertices(edges)
    dist: Dict[int, int] = {source: 0}
    for _round in range(len(verts)):
        changed = False
        for src, dst, w in edges:
            if src in dist:
                candidate = dist[src] + w
                if dst not in dist or candidate < dist[dst]:
                    dist[dst] = candidate
                    changed = True
        if not changed:
            break
    return dist


def reference_pagerank(edges: EdgeList, iterations: int = 10,
                       quantum: int = SCALE // 1000) -> Dict[int, int]:
    """Integer PageRank with the exact update rule of the dataflow version."""
    edges = _as_triples(edges)
    verts = sorted(_vertices(edges))
    out_edges: Dict[int, List[int]] = {}
    for src, dst, _w in edges:
        out_edges.setdefault(src, []).append(dst)
    rank = {v: SCALE for v in verts}
    for _ in range(iterations):
        incoming = {v: 0 for v in verts}
        for u, targets in out_edges.items():
            share = rank[u] // len(targets)
            contribution = (DAMPING_NUM * share) // DAMPING_DEN
            for v in targets:
                incoming[v] += contribution
        new_rank = {
            v: ((BASE + incoming[v] + quantum // 2) // quantum) * quantum
            for v in verts
        }
        if new_rank == rank:
            break
        rank = new_rank
    return rank


def reference_scc(edges: EdgeList) -> Dict[int, int]:
    """SCC ids (= max member id) via iterative Tarjan."""
    edges = _as_triples(edges)
    adjacency: Dict[int, List[int]] = {}
    verts = sorted(_vertices(edges))
    for src, dst, _w in edges:
        adjacency.setdefault(src, []).append(dst)
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    component: Dict[int, int] = {}

    def strongconnect(start: int) -> None:
        work = [(start, iter(adjacency.get(start, ())))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            v, neighbours = work[-1]
            advanced = False
            for w in neighbours:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adjacency.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                members = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    members.append(w)
                    if w == v:
                        break
                scc_id = max(members)
                for w in members:
                    component[w] = scc_id

    for v in verts:
        if v not in index:
            strongconnect(v)
    return component


def reference_kcore(edges: EdgeList, k: int = 2) -> Dict[int, int]:
    """k-core membership via peeling; edges treated as undirected simple."""
    neighbours: Dict[int, Set[int]] = {}
    for src, dst, _w in _as_triples(edges):
        if src == dst:
            continue
        neighbours.setdefault(src, set()).add(dst)
        neighbours.setdefault(dst, set()).add(src)
    alive = set(neighbours)
    changed = True
    while changed:
        changed = False
        for v in list(alive):
            degree = sum(1 for u in neighbours[v] if u in alive)
            if degree < k:
                alive.discard(v)
                changed = True
    return {v: k for v in alive}


def reference_triangles(edges: EdgeList) -> Dict[int, int]:
    """Per-vertex triangle counts on the undirected simple graph."""
    adjacency: Dict[int, Set[int]] = {}
    for src, dst, _w in _as_triples(edges):
        if src == dst:
            continue
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set()).add(src)
    counts: Dict[int, int] = {}
    verts = sorted(adjacency)
    for a in verts:
        higher = sorted(u for u in adjacency[a] if u > a)
        for i, b in enumerate(higher):
            for c in higher[i + 1:]:
                if c in adjacency[b]:
                    for v in (a, b, c):
                        counts[v] = counts.get(v, 0) + 1
    return counts


def reference_clustering(edges: EdgeList) -> Dict[int, Tuple[int, int]]:
    """(triangles, possible pairs) per vertex of undirected degree >= 2."""
    edges = _as_triples(edges)
    adjacency: Dict[int, Set[int]] = {}
    for src, dst, _w in edges:
        if src == dst:
            continue
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set()).add(src)
    triangles = reference_triangles(edges)
    out: Dict[int, Tuple[int, int]] = {}
    for vertex, neighbours in adjacency.items():
        degree = len(neighbours)
        if degree >= 2:
            out[vertex] = (triangles.get(vertex, 0),
                           degree * (degree - 1) // 2)
    return out


def reference_out_degrees(edges: EdgeList) -> Dict[int, int]:
    """Out-degree per vertex with outgoing edges (multiplicity included)."""
    out: Dict[int, int] = {}
    for src, _dst, _w in _as_triples(edges):
        out[src] = out.get(src, 0) + 1
    return out


def reference_max_degree(edges: EdgeList) -> Dict[int, int]:
    """The dataflow MaxDegree result: ``{0: max out-degree}`` (or empty)."""
    degrees = reference_out_degrees(edges)
    if not degrees:
        return {}
    return {0: max(degrees.values())}


def reference_mpsp(edges: EdgeList,
                   pairs: Sequence[Tuple[int, int]] = ()
                   ) -> Dict[Tuple[int, int], int]:
    """Per-pair shortest distances; unreachable pairs are absent."""
    edges = _as_triples(edges)
    present_sources = {src for src, _dst, _w in edges}
    result: Dict[Tuple[int, int], int] = {}
    for source in sorted({s for s, _d in pairs}):
        if source not in present_sources:
            continue
        dist = reference_sssp(edges, source)
        for s, d in pairs:
            if s == source and d in dist:
                result[(s, d)] = dist[d]
    return result


#: BellmanFord shares SSSP's oracle (identical semantics, separate name so
#: the verify registry can address both uniformly).
reference_bellman_ford = reference_sssp


def reference_label_propagation(edges: EdgeList,
                                rounds: int = 8) -> Dict[int, int]:
    """Synchronous plurality label propagation, ties to smallest label.

    Mirrors :class:`~repro.algorithms.label_propagation.LabelPropagation`
    exactly: undirected simple-graph neighbours (no self-loop votes, no
    multi-edge vote stuffing), at most ``rounds`` synchronous rounds,
    early exit at a fixed point.
    """
    adjacency: Dict[int, Set[int]] = {}
    for src, dst, _w in _as_triples(edges):
        if src == dst:
            continue
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set()).add(src)
    labels = {v: v for v in adjacency}
    for _ in range(rounds):
        new = {}
        for v, neighbours in adjacency.items():
            counts: Dict[int, int] = {}
            for u in neighbours:
                label = labels[u]
                counts[label] = counts.get(label, 0) + 1
            new[v] = min(counts, key=lambda label: (-counts[label], label))
        if new == labels:
            break
        labels = new
    return labels


def reference_personalized_pagerank(edges: EdgeList,
                                    seeds: Sequence[int] = (),
                                    iterations: int = 10,
                                    quantum: int = SCALE // 1000
                                    ) -> Dict[int, int]:
    """Integer PPR with the exact update rule of the dataflow version.

    Seed normalization mirrors the dataflow: absent seeds are dropped and
    restart mass splits over the seeds present in the view; with no seed
    present every rank is zero.
    """
    edges = _as_triples(edges)
    verts = sorted(_vertices(edges))
    present = sorted({int(s) for s in seeds} & set(verts))
    out_edges: Dict[int, List[int]] = {}
    for src, dst, _w in edges:
        out_edges.setdefault(src, []).append(dst)
    base = {v: 0 for v in verts}
    rank = {v: 0 for v in verts}
    for v in present:
        base[v] = BASE // len(present)
        rank[v] = SCALE // len(present)
    for _ in range(iterations):
        incoming = {v: 0 for v in verts}
        for u, targets in out_edges.items():
            share = rank[u] // len(targets)
            contribution = (DAMPING_NUM * share) // DAMPING_DEN
            for v in targets:
                incoming[v] += contribution
        new_rank = {
            v: ((base[v] + incoming[v] + quantum // 2) // quantum) * quantum
            for v in verts
        }
        if new_rank == rank:
            break
        rank = new_rank
    return rank


def reference_ktruss(edges: EdgeList,
                     k: int = 2) -> Dict[Tuple[int, int], int]:
    """k-truss edges via synchronous support peeling (cascades included).

    Each round recounts every surviving edge's triangle support over the
    surviving subgraph, then drops all under-supported edges at once —
    the same synchronous schedule as the dataflow fixed point. (The
    k-truss is unique, so any peeling order converges to the same set;
    the synchronous schedule is what the pin tests spell out.)
    """
    canonical: Set[Tuple[int, int]] = set()
    for src, dst, _w in _as_triples(edges):
        if src != dst:
            canonical.add((min(src, dst), max(src, dst)))
    alive = set(canonical)
    need = k - 2
    changed = True
    while changed:
        changed = False
        adjacency: Dict[int, Set[int]] = {}
        for a, b in alive:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        for edge in sorted(alive):
            a, b = edge
            support = len(adjacency[a] & adjacency[b])
            if support < need:
                alive.discard(edge)
                changed = True
    return {edge: k for edge in alive}


def reference_composite_score(edges: EdgeList, degree_weight: int = 1,
                              triangle_weight: int = 1, rank_weight: int = 1,
                              iterations: int = 5
                              ) -> Dict[int, Tuple[int, int]]:
    """Weighted degree/triangle/centi-PageRank blend with dense ranking.

    ``(vertex, (position, score))`` with position 1 the best score and
    ties broken toward the smaller vertex id — the exact ordering rule of
    :class:`~repro.algorithms.scoring.CompositeScore`.
    """
    from repro.algorithms.scoring import CENTIRANK

    edges = _as_triples(edges)
    verts = sorted(_vertices(edges))
    degrees = reference_out_degrees(edges)
    triangles = reference_triangles(edges)
    ranks = reference_pagerank(edges, iterations=iterations)
    scores = {
        v: (degree_weight * degrees.get(v, 0)
            + triangle_weight * triangles.get(v, 0)
            + rank_weight * (ranks[v] // CENTIRANK))
        for v in verts
    }
    ordered = sorted(verts, key=lambda v: (-scores[v], v))
    return {v: (position, scores[v])
            for position, v in enumerate(ordered, start=1)}
