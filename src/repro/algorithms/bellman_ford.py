"""Bellman-Ford single-source shortest paths (paper §2's running example).

Identical dataflow shape to the paper's Figure 2: a JoinMsg operator
producing candidate distances along edges and a UnionMin operator keeping
the per-vertex minimum, iterated to the fixed point.
"""

from __future__ import annotations

from typing import Optional

from repro.core.computation import GraphComputation


class BellmanFord(GraphComputation):
    """Minimum weighted distance from the source vertex.

    Edge weights come from the executor's edge records (``(src, (dst, w))``);
    negative weights are supported as long as no negative cycle exists (the
    safety cap aborts otherwise).
    """

    name = "BF"
    directed = True

    def __init__(self, source: Optional[int] = None):
        self.source = source

    def build(self, dataflow, edges):
        if self.source is not None:
            fixed = self.source
            roots = edges.flat_map(
                lambda rec: [(rec[0], 0)] if rec[0] == fixed else [],
                name="bf.fixedroot").distinct(name="bf.root")
        else:
            roots = edges.map(
                lambda rec: (0, rec[0]), name="bf.srcs").min_by_key(
                name="bf.minsrc").map(
                lambda rec: (rec[1], 0), name="bf.root")

        e_arr = edges.arrange_by_key(name="bf.edges")

        def body(inner, scope):
            e = e_arr.enter(scope)
            r = scope.enter(roots)
            messages = inner.join_arranged(
                e, lambda u, dist, dw: (dw[0], dist + dw[1]),
                name="bf.joinmsg")
            return messages.concat(r).min_by_key(name="bf.unionmin")

        return roots.iterate(body, name="bf.loop")
