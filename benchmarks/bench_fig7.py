"""Figure 7 (§7.2): scratch benefits on non-overlapping collections.

Shape asserted: on fully disjoint windows scratch wins, but boundedly
(differential's worst case is ~2x: undo + redo), and the factor does not
grow with the number of views — the §5 robustness property.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Wcc
from repro.bench.workloads import cno_collection, default_so_graph
from repro.core.executor import ExecutionMode

DAY = 86400


@pytest.fixture(scope="module")
def graph():
    return default_so_graph(scale=0.6)


@pytest.fixture(scope="module")
def cno_many(graph):
    return cno_collection(graph, 365 * DAY, max_views=8, name="cno-1y")


@pytest.fixture(scope="module")
def cno_few(graph):
    return cno_collection(graph, 3 * 365 * DAY, max_views=3, name="cno-3y")


@pytest.mark.parametrize("mode", [ExecutionMode.DIFF_ONLY,
                                  ExecutionMode.SCRATCH,
                                  ExecutionMode.ADAPTIVE])
@pytest.mark.parametrize("factory", [Wcc, Bfs], ids=["WCC", "BFS"])
def test_cno_many(benchmark, run_collection, cno_many, factory, mode):
    result = once(benchmark,
                  lambda: run_collection(factory(), cno_many, mode))
    benchmark.extra_info["work"] = result.total_work


def test_shape_scratch_wins_boundedly(benchmark, run_collection, cno_many,
                                      cno_few):
    def measure():
        factors = {}
        for label, collection in (("many", cno_many), ("few", cno_few)):
            diff = run_collection(Wcc(), collection,
                                  ExecutionMode.DIFF_ONLY)
            scratch = run_collection(Wcc(), collection,
                                     ExecutionMode.SCRATCH)
            factors[label] = diff.total_work / max(1, scratch.total_work)
        return factors

    factors = once(benchmark, measure)
    # Scratch wins on disjoint views...
    assert factors["many"] > 1.0
    # ...but boundedly (the paper argues ~2x and measures <=2.5x; our
    # pure-Python trace maintenance carries a larger constant, see
    # EXPERIMENTS.md)...
    assert factors["many"] < 6.0
    # ...and crucially the disadvantage grows far sublinearly in the view
    # count: 8 views vs 3 views must not cost ~8/3 the factor.
    assert factors["many"] / factors["few"] < 8 / 3


def test_shape_adaptive_switches_to_scratch(benchmark, run_collection,
                                            cno_many):
    def measure():
        return run_collection(Wcc(), cno_many, ExecutionMode.ADAPTIVE,
                              batch_size=1)

    result = once(benchmark, measure)
    counts = result.strategy_counts()
    # On disjoint views the optimizer should pick scratch for most views
    # after the two warm-up views.
    assert counts.get("scratch", 0) >= len(result.views) - 2
