"""Figure 8 (§7.4): runtime benefit of collection ordering, LJ-like graph.

Shape asserted: running WCC/BFS/MPSP diff-only over the optimizer's order
costs less than over a random order; adaptive splitting softens the random
orders (robustness) without erasing the optimizer's advantage.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Mpsp, Wcc
from repro.bench.experiments.fig8 import mpsp_pairs
from repro.bench.workloads import default_lj_graph, perturbation_collection
from repro.core.executor import ExecutionMode

CONFIG = (5, 2)  # scaled-down counterpart of the paper's 7C4/10C5


@pytest.fixture(scope="module")
def graph():
    return default_lj_graph(scale=0.5)


@pytest.fixture(scope="module")
def ordered(graph):
    return perturbation_collection(graph, *CONFIG,
                                   order_method="christofides")


@pytest.fixture(scope="module")
def shuffled(graph):
    return perturbation_collection(graph, *CONFIG, order_method="random",
                                   seed=1)


def algorithms(graph):
    return [("WCC", Wcc), ("BFS", Bfs),
            ("MPSP", lambda: Mpsp(mpsp_pairs(graph)))]


@pytest.mark.parametrize("ordering", ["ordered", "shuffled"])
@pytest.mark.parametrize("algo", ["WCC", "BFS", "MPSP"])
def test_diff_only(benchmark, request, run_collection, graph, ordering,
                   algo):
    collection = request.getfixturevalue(ordering)
    factory = dict(algorithms(graph))[algo]
    result = once(benchmark, lambda: run_collection(
        factory(), collection, ExecutionMode.DIFF_ONLY))
    benchmark.extra_info["work"] = result.total_work


def test_shape_ordering_speeds_up_all_algorithms(benchmark, run_collection,
                                                 graph, ordered, shuffled):
    def measure():
        out = {}
        for name, factory in algorithms(graph):
            ordered_run = run_collection(factory(), ordered,
                                         ExecutionMode.DIFF_ONLY)
            shuffled_run = run_collection(factory(), shuffled,
                                          ExecutionMode.DIFF_ONLY)
            out[name] = (ordered_run.total_work, shuffled_run.total_work)
        return out

    results = once(benchmark, measure)
    for name, (ordered_work, shuffled_work) in results.items():
        assert ordered_work < shuffled_work, name


def test_shape_adaptive_softens_bad_orders(benchmark, run_collection,
                                           graph, shuffled):
    def measure():
        diff_only = run_collection(Wcc(), shuffled,
                                   ExecutionMode.DIFF_ONLY)
        adaptive = run_collection(Wcc(), shuffled, ExecutionMode.ADAPTIVE,
                                  batch_size=1)
        return diff_only, adaptive

    diff_only, adaptive = once(benchmark, measure)
    assert adaptive.total_work <= diff_only.total_work * 1.1
