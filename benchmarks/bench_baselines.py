"""§7.5 — relative performance of algorithm-specific maintenance
(GraphBolt-style) vs black-box differential maintenance.

Published comparisons the paper reviews (and reproduced relative shapes):

* **PageRank**: specialized delta propagation beats DD's black-box
  maintenance by a wide margin (GraphBolt's Figure 8: ~an order of
  magnitude). Asserted: the specialized maintainer does several-fold less
  work per update than the engine's differential PR.
* **SSSP**: the relationship flips on deletion-heavy updates — the
  specialized maintainer conservatively invalidates whole downstream
  regions while DD retracts precisely (GraphBolt's Figure 9 had DD ~an
  order of magnitude faster). Asserted: the engine's differential
  Bellman-Ford does not lose by more than a small factor, unlike the PR
  case, i.e. the specialized/differential work ratio is dramatically
  larger for PR than for SSSP.
"""

import random

import pytest

from benchmarks.conftest import once
from repro.algorithms import BellmanFord, PageRank
from repro.baselines import IncrementalPageRank, IncrementalSssp
from repro.bench.workloads import orkut_churn_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode

NODES, EDGES, VIEWS, CHURN = 120, 600, 12, 3


@pytest.fixture(scope="module")
def collection():
    return orkut_churn_collection(
        num_nodes=NODES, num_edges=EDGES, num_views=VIEWS,
        additions_per_view=CHURN, removals_per_view=CHURN, seed=0,
        name="stream")


def edge_changes(collection, index, weighted):
    additions, removals = [], []
    for (_eid, src, dst, weight), mult in collection.diffs[index].items():
        record = (src, dst, weight) if weighted else (src, dst)
        (additions if mult > 0 else removals).append(record)
    return additions, removals


def run_specialized_pr(collection):
    maintainer = IncrementalPageRank(iterations=8)
    for index in range(collection.num_views):
        additions, removals = edge_changes(collection, index, weighted=False)
        maintainer.apply_diff(additions, removals)
    return maintainer


def run_specialized_sssp(collection, source):
    maintainer = IncrementalSssp(source)
    for index in range(collection.num_views):
        additions, removals = edge_changes(collection, index, weighted=True)
        maintainer.apply_diff(additions, removals)
    return maintainer


class TestSpecializedVsDifferential:
    def test_specialized_pagerank(self, benchmark, collection):
        maintainer = once(benchmark, lambda: run_specialized_pr(collection))
        benchmark.extra_info["work"] = maintainer.work

    def test_differential_pagerank(self, benchmark, run_collection,
                                   collection):
        result = once(benchmark, lambda: run_collection(
            PageRank(iterations=8), collection, ExecutionMode.DIFF_ONLY))
        benchmark.extra_info["work"] = result.total_work

    def test_specialized_sssp(self, benchmark, collection):
        source = min(s for (_e, s, _d, _w) in collection.diffs[0])
        maintainer = once(benchmark,
                          lambda: run_specialized_sssp(collection, source))
        benchmark.extra_info["work"] = maintainer.work

    def test_differential_sssp(self, benchmark, run_collection, collection):
        source = min(s for (_e, s, _d, _w) in collection.diffs[0])
        result = once(benchmark, lambda: run_collection(
            BellmanFord(source=source), collection,
            ExecutionMode.DIFF_ONLY))
        benchmark.extra_info["work"] = result.total_work

    def test_shape_specialization_gap_is_algorithm_dependent(
            self, benchmark, run_collection, collection):
        """The §7.5 shape: specialized maintenance crushes black-box
        maintenance for PR, while for SSSP differential maintenance is
        competitive — the PR gap must exceed the SSSP gap by a wide
        margin."""
        source = min(s for (_e, s, _d, _w) in collection.diffs[0])

        def measure():
            specialized_pr = run_specialized_pr(collection).work
            differential_pr = run_collection(
                PageRank(iterations=8), collection,
                ExecutionMode.DIFF_ONLY).total_work
            specialized_sssp = run_specialized_sssp(collection, source).work
            differential_sssp = run_collection(
                BellmanFord(source=source), collection,
                ExecutionMode.DIFF_ONLY).total_work
            return {
                "pr_gap": differential_pr / max(1, specialized_pr),
                "sssp_gap": differential_sssp / max(1, specialized_sssp),
            }

        gaps = once(benchmark, measure)
        benchmark.extra_info.update(gaps)
        # PR: specialized wins by a wide margin.
        assert gaps["pr_gap"] > 3.0
        # The PR specialization advantage dwarfs the SSSP one.
        assert gaps["pr_gap"] > 4 * gaps["sssp_gap"]
