"""Figure 10 (§7.6): distributed scalability, 1 -> 12 simulated machines.

Shape asserted: simulated parallel time decreases monotonically with the
machine count and the 4-machine speedup is material. (Perfect linearity
needs cluster-scale supersteps; see EXPERIMENTS.md.)
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Wcc
from repro.bench.workloads import scalability_collection
from repro.core.executor import ExecutionMode

MACHINES = (1, 2, 4, 8, 12)


@pytest.fixture(scope="module")
def workload():
    graph, collection = scalability_collection(num_nodes=300,
                                               num_edges=1800)
    source = min(edge.src for edge in graph.edges)
    return graph, collection, source


@pytest.mark.parametrize("machines", MACHINES)
def test_wcc_scaling(benchmark, run_collection, workload, machines):
    _graph, collection, _source = workload
    result = once(benchmark, lambda: run_collection(
        Wcc(), collection, ExecutionMode.DIFF_ONLY, workers=machines))
    benchmark.extra_info["parallel_time"] = result.total_parallel_time
    benchmark.extra_info["machines"] = machines


@pytest.mark.parametrize("machines", (1, 4, 12))
def test_bfs_scaling(benchmark, run_collection, workload, machines):
    _graph, collection, source = workload
    result = once(benchmark, lambda: run_collection(
        Bfs(source=source), collection, ExecutionMode.DIFF_ONLY,
        workers=machines))
    benchmark.extra_info["parallel_time"] = result.total_parallel_time
    benchmark.extra_info["machines"] = machines


def test_shape_monotone_speedup(benchmark, run_collection, workload):
    _graph, collection, _source = workload

    def measure():
        times = {}
        for machines in MACHINES:
            result = run_collection(Wcc(), collection,
                                    ExecutionMode.DIFF_ONLY,
                                    workers=machines)
            times[machines] = result.total_parallel_time
        return times

    times = once(benchmark, measure)
    ordered = [times[m] for m in MACHINES]
    assert ordered == sorted(ordered, reverse=True)
    assert times[1] / times[4] > 1.4
    assert times[1] / times[12] > times[1] / times[4]
