"""Figure 6 (§7.2): diff-only benefits on expanding-window collections.

Shape asserted: for the stable algorithms, diff-only beats scratch on
C_sim, with a larger factor for the smaller window (more, more-similar
views); adaptive lands within ~25% of the better strategy.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Scc, Wcc
from repro.bench.workloads import csim_collection, default_so_graph
from repro.core.executor import ExecutionMode

DAY = 86400


@pytest.fixture(scope="module")
def graph():
    return default_so_graph(scale=0.6)


@pytest.fixture(scope="module")
def csim_narrow(graph):
    return csim_collection(graph, 91 * DAY, max_views=14, name="csim-3mo")


@pytest.fixture(scope="module")
def csim_wide(graph):
    return csim_collection(graph, 2 * 365 * DAY, max_views=4,
                           name="csim-2y")


@pytest.mark.parametrize("mode", [ExecutionMode.DIFF_ONLY,
                                  ExecutionMode.SCRATCH,
                                  ExecutionMode.ADAPTIVE])
@pytest.mark.parametrize("factory", [Wcc, Bfs, Scc],
                         ids=["WCC", "BFS", "SCC"])
def test_csim_narrow(benchmark, run_collection, csim_narrow, factory, mode):
    result = once(benchmark,
                  lambda: run_collection(factory(), csim_narrow, mode))
    benchmark.extra_info["work"] = result.total_work


def test_shape_diff_wins_and_factor_grows(benchmark, run_collection,
                                          csim_narrow, csim_wide):
    def measure():
        factors = {}
        for label, collection in (("narrow", csim_narrow),
                                  ("wide", csim_wide)):
            diff = run_collection(Wcc(), collection,
                                  ExecutionMode.DIFF_ONLY)
            scratch = run_collection(Wcc(), collection,
                                     ExecutionMode.SCRATCH)
            factors[label] = scratch.total_work / max(1, diff.total_work)
        return factors

    factors = once(benchmark, measure)
    assert factors["narrow"] > 1.0
    assert factors["wide"] > 1.0
    # Smaller window => more similar views => bigger diff-only benefit.
    assert factors["narrow"] > factors["wide"]


def test_shape_adaptive_tracks_best(benchmark, run_collection, csim_narrow):
    def measure():
        results = {
            mode: run_collection(Bfs(), csim_narrow, mode)
            for mode in ExecutionMode
        }
        return results

    results = once(benchmark, measure)
    best = min(results[ExecutionMode.DIFF_ONLY].total_work,
               results[ExecutionMode.SCRATCH].total_work)
    adaptive = results[ExecutionMode.ADAPTIVE].total_work
    assert adaptive <= best * 1.25
