"""Ablations of the design choices DESIGN.md calls out.

* **Splitting batch size ℓ** (§5 uses ℓ=10 "by default"): sweep ℓ over a
  collection with known-good split points and over a uniformly-similar
  collection. Small ℓ reacts faster on mixed collections; large ℓ is
  harmless when one strategy dominates.
* **PageRank quantization** (our stand-in for the paper's floating-point
  convergence tolerance): coarser quanta damp the instability cascade and
  shrink differential work.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import PageRank, Wcc
from repro.bench.workloads import caut_collection, orkut_churn_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.datasets import citations_like


@pytest.fixture(scope="module")
def caut():
    return caut_collection(citations_like(num_nodes=400, num_edges=1600,
                                          seed=0))


@pytest.fixture(scope="module")
def similar_churn():
    return orkut_churn_collection(num_nodes=120, num_edges=600,
                                  num_views=24, additions_per_view=2,
                                  removals_per_view=2, seed=3)


class TestBatchSizeAblation:
    @pytest.mark.parametrize("batch_size", [1, 5, 10])
    def test_caut_batch_sweep(self, benchmark, run_collection, caut,
                              batch_size):
        result = once(benchmark, lambda: run_collection(
            Wcc(), caut, ExecutionMode.ADAPTIVE, batch_size=batch_size))
        benchmark.extra_info["work"] = result.total_work
        benchmark.extra_info["splits"] = len(result.split_points)

    def test_shape_small_batches_win_on_mixed_collections(
            self, benchmark, run_collection, caut):
        def measure():
            fine = run_collection(Wcc(), caut, ExecutionMode.ADAPTIVE,
                                  batch_size=1)
            coarse = run_collection(Wcc(), caut, ExecutionMode.ADAPTIVE,
                                    batch_size=10)
            return fine, coarse

        fine, coarse = once(benchmark, measure)
        # C_aut alternates regimes every 5 views; a 25-view collection
        # needs fine-grained decisions to catch the slides.
        assert fine.total_work <= coarse.total_work

    def test_shape_batch_size_irrelevant_when_one_strategy_dominates(
            self, benchmark, run_collection, similar_churn):
        def measure():
            return [run_collection(Wcc(), similar_churn,
                                   ExecutionMode.ADAPTIVE,
                                   batch_size=batch).total_work
                    for batch in (1, 10)]

        fine_work, coarse_work = once(benchmark, measure)
        assert abs(fine_work - coarse_work) <= 0.2 * max(fine_work,
                                                         coarse_work)


class TestQuantizationAblation:
    @pytest.mark.parametrize("quantum", [100, 1_000, 10_000])
    def test_pr_quantum_sweep(self, benchmark, quantum, similar_churn):
        def measure():
            executor = AnalyticsExecutor()
            return executor.run_on_collection(
                PageRank(iterations=6, quantum=quantum), similar_churn,
                mode=ExecutionMode.DIFF_ONLY, cost_metric="work")

        result = once(benchmark, measure)
        benchmark.extra_info["work"] = result.total_work
        benchmark.extra_info["quantum"] = quantum

    def test_shape_coarser_quanta_reduce_differential_work(
            self, benchmark, similar_churn):
        def measure():
            executor = AnalyticsExecutor()
            works = {}
            for quantum in (100, 10_000):
                result = executor.run_on_collection(
                    PageRank(iterations=6, quantum=quantum),
                    similar_churn, mode=ExecutionMode.DIFF_ONLY,
                    cost_metric="work")
                works[quantum] = result.total_work
            return works

        works = once(benchmark, measure)
        assert works[10_000] < works[100]
