"""Hot-path micro/meso benchmark suite and regression gate.

Measures the differential engine's hot paths at three granularities:

* **join-heavy** — multi-epoch random churn through plain and arranged
  joins (operator-level throughput);
* **iterate-heavy** — a long-diameter label propagation, where per-key
  trace accumulation dominates (the `KeyTrace` cache's home turf);
* **collection-run** — the end-to-end Graphsurge workload: an iterative
  computation executed differentially across a whole view collection.

Each scenario reports wall seconds, a calibration-normalized *score*
(seconds divided by a fixed pure-Python calibration loop, so numbers are
comparable across machines of different speeds), and the engine's
deterministic cost counters (``work``, ``parallel_time``).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                # print
    PYTHONPATH=src python benchmarks/bench_hotpath.py --emit BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check BENCH_engine.json

``--check`` is the regression gate used by the CI ``perf-smoke`` job: it
exits non-zero when any scenario's score or work regresses past the
tolerance (default 25%) against the committed baseline.

This file is a plain script, not a pytest-benchmark module: the gate must
run without pytest and produce one comparable JSON payload per run.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Callable, Dict, Tuple

from repro.algorithms import Bfs, Wcc
from repro.bench.reporting import (
    BENCH_SCHEMA,
    bench_to_json,
    compare_benchmarks,
    load_bench_json,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.differential import Dataflow


def _calibrate() -> float:
    """Seconds for a fixed pure-Python workload (machine-speed yardstick).

    Dict churn and tuple hashing approximate the engine's instruction mix
    better than arithmetic loops. Best-of-three guards against scheduler
    noise.
    """
    def loop() -> float:
        started = time.perf_counter()
        table: Dict[Tuple[int, int], int] = {}
        for i in range(120_000):
            key = (i % 997, i % 31)
            table[key] = table.get(key, 0) + 1
            if i % 7 == 0:
                table.pop((i % 89, i % 31), None)
        return time.perf_counter() - started

    return min(loop() for _ in range(3))


# -- scenarios ----------------------------------------------------------------


def _random_keyed_diff(n: int, keys: int, rng: random.Random) -> Dict:
    return {(rng.randrange(keys), rng.randrange(1_000)): 1
            for _ in range(n)}


def scenario_join_heavy(scale: float) -> Dict[str, int]:
    """Multi-epoch churn through one plain two-sided join."""
    rng = random.Random(7)
    df = Dataflow()
    a = df.new_input("a")
    b = df.new_input("b")
    df.capture(a.join(b), "out")
    n = int(4_000 * scale)
    for _epoch in range(6):
        df.step({"a": _random_keyed_diff(n, 900, rng),
                 "b": _random_keyed_diff(n, 900, rng)})
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time}


def scenario_join_arranged_shared(scale: float) -> Dict[str, int]:
    """One arrangement of a churning relation read by three joins."""
    rng = random.Random(11)
    df = Dataflow()
    base = df.new_input("base")
    arranged = base.arrange_by_key("base.arr")
    for index in range(3):
        probe = df.new_input(f"probe{index}")
        df.capture(probe.join_arranged(arranged), f"out{index}")
    n = int(3_000 * scale)
    for _epoch in range(5):
        feed = {"base": _random_keyed_diff(n, 700, rng)}
        for index in range(3):
            feed[f"probe{index}"] = _random_keyed_diff(n // 3, 700, rng)
        df.step(feed)
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time}


def scenario_iterate_heavy(scale: float) -> Dict[str, int]:
    """Label propagation over a long path: many iterations, deep traces.

    A path graph has diameter ``n - 1``, so the fixed point takes ~n
    iterations and every vertex's trace is touched across many of them —
    the accumulate-dominated regime.
    """
    n = int(90 * scale)
    df = Dataflow()
    edges = df.new_input("edges")
    labels = df.new_input("labels")

    def body(inner, scope):
        e = scope.enter(edges)
        seed = scope.enter(labels)
        return inner.join(
            e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

    df.capture(labels.iterate(body), "out")
    path = {}
    for u in range(n - 1):
        path[(u, u + 1)] = 1
        path[(u + 1, u)] = 1
    df.step({"edges": path, "labels": {(v, v): 1 for v in range(n)}})
    # A handful of incremental epochs: cut and re-link the path near the
    # far end, so corrections cascade through long iteration suffixes.
    for epoch in range(1, 4):
        cut = n - 12 * epoch
        df.step({"edges": {(cut, cut + 1): -1, (cut + 1, cut): -1}})
        df.step({"edges": {(cut, cut + 1): 1, (cut + 1, cut): 1}})
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time}


def _path_cut_collection(num_nodes: int, num_views: int, seed: int):
    """A path graph whose views cut (and later restore) deep chain edges.

    Cutting a path edge relabels the entire downstream suffix, so every
    view forces corrections across long iteration ranges — the
    iterate-heavy collection-run regime the trace cache targets.
    """
    rng = random.Random(seed)
    base: Dict[Tuple[int, int, int, int], int] = {}
    for u in range(num_nodes - 1):
        base[(u, u, u + 1, 1)] = 1
    diffs = [dict(base)]
    cut = None
    for _index in range(1, num_views):
        diff: Dict[Tuple[int, int, int, int], int] = {}
        if cut is not None:
            diff[cut] = diff.get(cut, 0) + 1
        position = num_nodes // 2 + rng.randrange(num_nodes // 2 - 2)
        cut = (position, position, position + 1, 1)
        diff[cut] = diff.get(cut, 0) - 1
        # Re-cutting the restored position nets out to no change.
        diffs.append({edge: mult for edge, mult in diff.items() if mult})
    return collection_from_diffs(f"hotpath-pathcut-{num_views}", diffs)


def scenario_collection_run(scale: float) -> Dict[str, int]:
    """The headline workload: iterative WCC differentially across a
    collection of deep-cut path views."""
    collection = _path_cut_collection(int(100 * scale), 10, seed=3)
    executor = AnalyticsExecutor()
    result = executor.run_on_collection(
        Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
        cost_metric="work")
    return {"work": result.total_work,
            "parallel_time": result.total_parallel_time}


def scenario_collection_bfs(scale: float) -> Dict[str, int]:
    """BFS across the same deep-cut collection (join + min reduce mix)."""
    collection = _path_cut_collection(int(100 * scale), 6, seed=5)
    executor = AnalyticsExecutor()
    result = executor.run_on_collection(
        Bfs(source=0), collection, mode=ExecutionMode.DIFF_ONLY,
        cost_metric="work")
    return {"work": result.total_work,
            "parallel_time": result.total_parallel_time}


SCENARIOS: Dict[str, Callable[[float], Dict[str, int]]] = {
    "join_heavy": scenario_join_heavy,
    "join_arranged_shared": scenario_join_arranged_shared,
    "iterate_heavy": scenario_iterate_heavy,
    "collection_run_wcc": scenario_collection_run,
    "collection_run_bfs": scenario_collection_bfs,
}


def run_suite(scale: float = 1.0) -> Dict[str, object]:
    """Run every scenario once; return the baseline-comparable payload."""
    calibration = _calibrate()
    scenarios: Dict[str, Dict[str, float]] = {}
    for name, scenario in SCENARIOS.items():
        started = time.perf_counter()
        counters = scenario(scale)
        wall = time.perf_counter() - started
        scenarios[name] = {
            "wall_seconds": round(wall, 4),
            "score": round(wall / calibration, 2),
            "work": counters["work"],
            "parallel_time": counters["parallel_time"],
        }
    return {
        "suite": "hotpath",
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "calibration_seconds": round(calibration, 4),
        "scenarios": scenarios,
    }


def _render(payload: Dict[str, object]) -> str:
    lines = [f"hotpath suite (scale {payload['scale']}, calibration "
             f"{payload['calibration_seconds']}s)"]
    header = f"{'scenario':<24} {'wall(s)':>9} {'score':>8} " \
             f"{'work':>12} {'ptime':>12}"
    lines.append(header)
    for name, row in payload["scenarios"].items():
        lines.append(
            f"{name:<24} {row['wall_seconds']:>9.3f} {row['score']:>8.2f} "
            f"{row['work']:>12} {row['parallel_time']:>12}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0; the "
                             "committed baseline is recorded at 1.0)")
    parser.add_argument("--emit", metavar="PATH",
                        help="write this run as a JSON baseline")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against a JSON baseline; exit 1 on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale)
    print(_render(payload))

    if args.emit:
        bench_to_json(payload, args.emit)
        print(f"\nbaseline written to {args.emit}")
    if args.check:
        baseline = load_bench_json(args.check)
        if baseline.get("scale") != args.scale:
            print(f"\nWARNING: baseline recorded at scale "
                  f"{baseline.get('scale')}, this run at {args.scale}; "
                  f"work comparisons are not meaningful", file=sys.stderr)
        problems = compare_benchmarks(payload, baseline,
                                      tolerance=args.tolerance)
        if problems:
            print("\nREGRESSIONS vs " + str(args.check))
            for problem in problems:
                print("  " + problem)
            return 1
        print(f"\nOK: within {args.tolerance:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
