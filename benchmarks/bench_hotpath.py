"""Hot-path micro/meso benchmark suite and regression gate.

Measures the differential engine's hot paths at three granularities:

* **join-heavy** — multi-epoch random churn through plain and arranged
  joins (operator-level throughput);
* **iterate-heavy** — a long-diameter label propagation, where per-key
  trace accumulation dominates (the `KeyTrace` cache's home turf);
* **collection-run** — the end-to-end Graphsurge workload: an iterative
  computation executed differentially across a whole view collection.

Each scenario reports wall seconds, a calibration-normalized *score*
(seconds divided by a fixed pure-Python calibration loop, so numbers are
comparable across machines of different speeds), the engine's
deterministic cost counters (``work``, ``parallel_time``), and a
canonical ``output_digest`` so runs can be checked for observational
equality.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                # print
    PYTHONPATH=src python benchmarks/bench_hotpath.py --emit BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --compare-backends --workers 4 --min-speedup 2.0

``--check`` is the regression gate used by the CI ``perf-smoke`` job: it
exits non-zero when any scenario's score or work regresses past the
tolerance (default 25%) against the committed baseline.

``--compare-backends`` is the gate behind ``make bench-parallel`` and
the CI ``parallel-smoke`` job: it runs the suite on the inline backend
and again on the process backend (real OS worker processes, see
``docs/parallel.md``), fails if any counter or output digest differs,
and — when the machine actually has the cores — enforces a minimum
wall-clock speedup with ``--min-speedup``. On machines with fewer cores
than ``--workers`` the speedup is reported advisorily instead of
gating, because forked workers time-slicing one core cannot beat the
inline loop.

This file is a plain script, not a pytest-benchmark module: the gate must
run without pytest and produce one comparable JSON payload per run.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import random
import sys
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.algorithms import Bfs, Wcc
from repro.bench.reporting import (
    BENCH_SCHEMA,
    backend_speedup_rows,
    bench_to_json,
    compare_backend_payloads,
    compare_benchmarks,
    load_bench_json,
    render_backend_comparison,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.differential import Dataflow
from repro.errors import ConfigError


def _calibrate() -> float:
    """Seconds for a fixed pure-Python workload (machine-speed yardstick).

    Dict churn and tuple hashing approximate the engine's instruction mix
    better than arithmetic loops. Best-of-three guards against scheduler
    noise.
    """
    def loop() -> float:
        started = time.perf_counter()
        table: Dict[Tuple[int, int], int] = {}
        for i in range(120_000):
            key = (i % 997, i % 31)
            table[key] = table.get(key, 0) + 1
            if i % 7 == 0:
                table.pop((i % 89, i % 31), None)
        return time.perf_counter() - started

    return min(loop() for _ in range(3))


def _digest(canonical: object) -> str:
    """Short stable digest of an already-canonicalized (sorted) value."""
    return hashlib.sha256(repr(canonical).encode()).hexdigest()[:16]


def _digest_captures(captures) -> str:
    """Digest one or more ``CaptureOp`` difference streams canonically."""
    canonical = tuple(
        (cap.name, tuple(sorted(
            (time_, tuple(sorted(diff.items())))
            for time_, diff in cap.trace.items())))
        for cap in captures)
    return _digest(canonical)


def _digest_views(result) -> str:
    """Digest a collection run's kept per-view outputs canonically."""
    canonical = tuple(
        (view.view_name, tuple(sorted(view.output.items())))
        for view in result.views)
    return _digest(canonical)


# -- scenarios ----------------------------------------------------------------


def _random_keyed_diff(n: int, keys: int, rng: random.Random) -> Dict:
    return {(rng.randrange(keys), rng.randrange(1_000)): 1
            for _ in range(n)}


def scenario_join_heavy(scale: float, workers: int = 1,
                        backend: str = "inline") -> Dict[str, object]:
    """Multi-epoch churn through one plain two-sided join."""
    rng = random.Random(7)
    df = Dataflow(workers=workers, backend=backend)
    a = df.new_input("a")
    b = df.new_input("b")
    out = df.capture(a.join(b), "out")
    n = int(4_000 * scale)
    started = time.perf_counter()
    try:
        for _epoch in range(6):
            df.step({"a": _random_keyed_diff(n, 900, rng),
                     "b": _random_keyed_diff(n, 900, rng)})
        wall = time.perf_counter() - started
        digest = _digest_captures([out])
    finally:
        df.close()
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time,
            "wall_seconds": wall,
            "output_digest": digest}


def scenario_join_arranged_shared(scale: float, workers: int = 1,
                                  backend: str = "inline"
                                  ) -> Dict[str, object]:
    """One arrangement of a churning relation read by three joins."""
    rng = random.Random(11)
    df = Dataflow(workers=workers, backend=backend)
    base = df.new_input("base")
    arranged = base.arrange_by_key("base.arr")
    captures = []
    for index in range(3):
        probe = df.new_input(f"probe{index}")
        captures.append(
            df.capture(probe.join_arranged(arranged), f"out{index}"))
    n = int(3_000 * scale)
    started = time.perf_counter()
    try:
        for _epoch in range(5):
            feed = {"base": _random_keyed_diff(n, 700, rng)}
            for index in range(3):
                feed[f"probe{index}"] = _random_keyed_diff(n // 3, 700, rng)
            df.step(feed)
        wall = time.perf_counter() - started
        digest = _digest_captures(captures)
    finally:
        df.close()
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time,
            "wall_seconds": wall,
            "output_digest": digest}


def scenario_iterate_heavy(scale: float, workers: int = 1,
                           backend: str = "inline") -> Dict[str, object]:
    """Label propagation over a long path: many iterations, deep traces.

    A path graph has diameter ``n - 1``, so the fixed point takes ~n
    iterations and every vertex's trace is touched across many of them —
    the accumulate-dominated regime.
    """
    n = int(90 * scale)
    df = Dataflow(workers=workers, backend=backend)
    edges = df.new_input("edges")
    labels = df.new_input("labels")

    def body(inner, scope):
        e = scope.enter(edges)
        seed = scope.enter(labels)
        return inner.join(
            e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

    out = df.capture(labels.iterate(body), "out")
    path = {}
    for u in range(n - 1):
        path[(u, u + 1)] = 1
        path[(u + 1, u)] = 1
    started = time.perf_counter()
    try:
        df.step({"edges": path, "labels": {(v, v): 1 for v in range(n)}})
        # A handful of incremental epochs: cut and re-link the path near
        # the far end, so corrections cascade through long iteration
        # suffixes.
        for epoch in range(1, 4):
            cut = n - 12 * epoch
            df.step({"edges": {(cut, cut + 1): -1, (cut + 1, cut): -1}})
            df.step({"edges": {(cut, cut + 1): 1, (cut + 1, cut): 1}})
        wall = time.perf_counter() - started
        digest = _digest_captures([out])
    finally:
        df.close()
    return {"work": df.meter.total_work,
            "parallel_time": df.meter.parallel_time,
            "wall_seconds": wall,
            "output_digest": digest}


def _path_cut_collection(num_nodes: int, num_views: int, seed: int):
    """A path graph whose views cut (and later restore) deep chain edges.

    Cutting a path edge relabels the entire downstream suffix, so every
    view forces corrections across long iteration ranges — the
    iterate-heavy collection-run regime the trace cache targets.
    """
    rng = random.Random(seed)
    base: Dict[Tuple[int, int, int, int], int] = {}
    for u in range(num_nodes - 1):
        base[(u, u, u + 1, 1)] = 1
    diffs = [dict(base)]
    cut = None
    for _index in range(1, num_views):
        diff: Dict[Tuple[int, int, int, int], int] = {}
        if cut is not None:
            diff[cut] = diff.get(cut, 0) + 1
        position = num_nodes // 2 + rng.randrange(num_nodes // 2 - 2)
        cut = (position, position, position + 1, 1)
        diff[cut] = diff.get(cut, 0) - 1
        # Re-cutting the restored position nets out to no change.
        diffs.append({edge: mult for edge, mult in diff.items() if mult})
    return collection_from_diffs(f"hotpath-pathcut-{num_views}", diffs)


def scenario_collection_run(scale: float, workers: int = 1,
                            backend: str = "inline") -> Dict[str, object]:
    """The headline workload: iterative WCC differentially across a
    collection of deep-cut path views."""
    collection = _path_cut_collection(int(100 * scale), 10, seed=3)
    executor = AnalyticsExecutor(workers=workers, backend=backend)
    started = time.perf_counter()
    result = executor.run_on_collection(
        Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
        keep_outputs=True, cost_metric="work")
    wall = time.perf_counter() - started
    return {"work": result.total_work,
            "parallel_time": result.total_parallel_time,
            "wall_seconds": wall,
            "output_digest": _digest_views(result)}


def scenario_collection_bfs(scale: float, workers: int = 1,
                            backend: str = "inline") -> Dict[str, object]:
    """BFS across the same deep-cut collection (join + min reduce mix)."""
    collection = _path_cut_collection(int(100 * scale), 6, seed=5)
    executor = AnalyticsExecutor(workers=workers, backend=backend)
    started = time.perf_counter()
    result = executor.run_on_collection(
        Bfs(source=0), collection, mode=ExecutionMode.DIFF_ONLY,
        keep_outputs=True, cost_metric="work")
    wall = time.perf_counter() - started
    return {"work": result.total_work,
            "parallel_time": result.total_parallel_time,
            "wall_seconds": wall,
            "output_digest": _digest_views(result)}


SCENARIOS: Dict[str, Callable[..., Dict[str, object]]] = {
    "join_heavy": scenario_join_heavy,
    "join_arranged_shared": scenario_join_arranged_shared,
    "iterate_heavy": scenario_iterate_heavy,
    "collection_run_wcc": scenario_collection_run,
    "collection_run_bfs": scenario_collection_bfs,
}


def run_suite(scale: float = 1.0, workers: int = 1,
              backend: str = "inline",
              names: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Run the selected scenarios once; return the comparable payload."""
    if names is None:
        names = list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ConfigError(f"unknown scenario(s) {unknown}; "
                          f"known: {sorted(SCENARIOS)}")
    calibration = _calibrate()
    scenarios: Dict[str, Dict[str, object]] = {}
    for name in names:
        counters = SCENARIOS[name](scale, workers=workers, backend=backend)
        # Scenarios time their own execution window, which excludes the
        # output-digest canonicalization: that is measurement overhead,
        # identical across backends, and would otherwise dominate the
        # score of output-heavy scenarios.
        wall = counters["wall_seconds"]
        scenarios[name] = {
            "wall_seconds": round(wall, 4),
            "score": round(wall / calibration, 2),
            "work": counters["work"],
            "parallel_time": counters["parallel_time"],
            "output_digest": counters["output_digest"],
        }
    return {
        "suite": "hotpath",
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "backend": backend,
        "workers": workers,
        "calibration_seconds": round(calibration, 4),
        "scenarios": scenarios,
    }


def _render(payload: Dict[str, object]) -> str:
    lines = [f"hotpath suite (scale {payload['scale']}, backend "
             f"{payload['backend']}, workers {payload['workers']}, "
             f"calibration {payload['calibration_seconds']}s)"]
    header = f"{'scenario':<24} {'wall(s)':>9} {'score':>8} " \
             f"{'work':>12} {'ptime':>12}"
    lines.append(header)
    for name, row in payload["scenarios"].items():
        lines.append(
            f"{name:<24} {row['wall_seconds']:>9.3f} {row['score']:>8.2f} "
            f"{row['work']:>12} {row['parallel_time']:>12}")
    return "\n".join(lines)


def _compare_backends(args) -> int:
    """Run inline vs process, gate on equality (and speedup if gateable)."""
    names = None
    if args.scenarios:
        names = [part.strip() for part in args.scenarios.split(",")
                 if part.strip()]
    print(f"running inline backend (workers={args.workers})...")
    inline_payload = run_suite(scale=args.scale, workers=args.workers,
                               backend="inline", names=names)
    print(f"running process backend (workers={args.workers})...")
    process_payload = run_suite(scale=args.scale, workers=args.workers,
                                backend="process", names=names)
    rows = backend_speedup_rows(inline_payload, process_payload)
    print()
    print(render_backend_comparison(rows))
    problems = compare_backend_payloads(inline_payload, process_payload)
    if problems:
        print("\nBACKEND DIVERGENCE (counters/outputs must be identical)")
        for problem in problems:
            print("  " + problem)
        return 1
    print("\nOK: counters and output digests identical across backends")
    if args.min_speedup is not None:
        cores = os.cpu_count() or 1
        slow = [row for row in rows
                if float(row["speedup"]) < args.min_speedup]
        if cores < args.workers:
            print(f"speedup gate advisory only: {cores} core(s) < "
                  f"{args.workers} workers"
                  + (f"; below target: "
                     f"{[row['scenario'] for row in slow]}" if slow else ""))
        elif slow:
            print(f"\nSPEEDUP below {args.min_speedup:.2f}x:")
            for row in slow:
                print(f"  {row['scenario']}: {row['speedup']}x")
            return 1
        else:
            print(f"OK: every scenario >= {args.min_speedup:.2f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0; the "
                             "committed baseline is recorded at 1.0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker shard count (default 1)")
    parser.add_argument("--backend", default="inline",
                        choices=["inline", "process"],
                        help="execution backend (default inline; see "
                             "docs/parallel.md)")
    parser.add_argument("--scenarios", default=None, metavar="A,B",
                        help="comma-separated scenario subset "
                             "(default: all)")
    parser.add_argument("--emit", metavar="PATH",
                        help="write this run as a JSON baseline")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against a JSON baseline; exit 1 on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    parser.add_argument("--compare-backends", action="store_true",
                        help="run inline AND process backends; fail on "
                             "any counter/output divergence")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="with --compare-backends: minimum process-"
                             "backend wall-clock speedup; enforced only "
                             "when the machine has >= --workers cores, "
                             "advisory otherwise")
    args = parser.parse_args(argv)

    try:
        if args.compare_backends:
            return _compare_backends(args)

        payload = run_suite(scale=args.scale, workers=args.workers,
                            backend=args.backend,
                            names=([part.strip() for part in
                                    args.scenarios.split(",")
                                    if part.strip()]
                                   if args.scenarios else None))
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(_render(payload))

    if args.emit:
        bench_to_json(payload, args.emit)
        print(f"\nbaseline written to {args.emit}")
    if args.check:
        baseline = load_bench_json(args.check)
        if baseline.get("scale") != args.scale:
            print(f"\nWARNING: baseline recorded at scale "
                  f"{baseline.get('scale')}, this run at {args.scale}; "
                  f"work comparisons are not meaningful", file=sys.stderr)
        problems = compare_benchmarks(payload, baseline,
                                      tolerance=args.tolerance)
        if problems:
            print("\nREGRESSIONS vs " + str(args.check))
            for problem in problems:
                print("  " + problem)
            return 1
        print(f"\nOK: within {args.tolerance:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
