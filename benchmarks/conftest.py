"""Shared benchmark fixtures and helpers.

Every benchmark runs its workload exactly once per measurement
(``rounds=1``): the workloads are deterministic, long enough to dominate
timer noise, and repeat-running multi-second collection executions would
make the suite unusably slow.
"""

from __future__ import annotations

import pytest

from repro.core.executor import AnalyticsExecutor, ExecutionMode


def once(benchmark, func):
    """Run ``func`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def run_collection():
    """Callable: run a computation over a collection in one mode."""

    def _run(computation, collection, mode, workers=1, batch_size=10):
        executor = AnalyticsExecutor(workers=workers)
        return executor.run_on_collection(
            computation, collection, mode=mode, batch_size=batch_size,
            cost_metric="work")

    return _run


MODES = ExecutionMode
