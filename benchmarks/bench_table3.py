"""Table 3 (§7.3): adaptive splitting on the citation collections.

Shape asserted: adaptive matches (within tolerance) or beats the better of
diff-only/scratch on C_sl and C_ex-sh-sl, and on C_aut it splits at the
year-window slides and beats diff-only.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Wcc
from repro.bench.workloads import (
    caut_collection,
    cex_sh_sl_collection,
    csl_collection,
    default_pc_graph,
)
from repro.core.executor import ExecutionMode


@pytest.fixture(scope="module")
def graph():
    return default_pc_graph(scale=1.0)


@pytest.fixture(scope="module")
def collections(graph):
    return {
        "csl": csl_collection(graph),
        "cex": cex_sh_sl_collection(graph),
        "caut": caut_collection(graph),
    }


@pytest.mark.parametrize("name", ["csl", "cex", "caut"])
@pytest.mark.parametrize("mode", [ExecutionMode.DIFF_ONLY,
                                  ExecutionMode.SCRATCH,
                                  ExecutionMode.ADAPTIVE])
def test_wcc(benchmark, run_collection, collections, name, mode):
    result = once(benchmark, lambda: run_collection(
        Wcc(), collections[name], mode, batch_size=1))
    benchmark.extra_info["work"] = result.total_work
    benchmark.extra_info["splits"] = len(result.split_points)


def test_shape_adaptive_competitive_everywhere(benchmark, run_collection,
                                               collections):
    def measure():
        outcome = {}
        for name, collection in collections.items():
            runs = {mode: run_collection(Bfs(), collection, mode,
                                         batch_size=1)
                    for mode in ExecutionMode}
            outcome[name] = runs
        return outcome

    outcome = once(benchmark, measure)
    for name, runs in outcome.items():
        best = min(runs[ExecutionMode.DIFF_ONLY].total_work,
                   runs[ExecutionMode.SCRATCH].total_work)
        adaptive = runs[ExecutionMode.ADAPTIVE].total_work
        # "almost matches or outperforms the better of the two" — allow
        # the warm-up views' cost as tolerance.
        assert adaptive <= best * 1.35, name


def test_shape_caut_splits_at_year_slides(benchmark, run_collection,
                                          collections):
    def measure():
        return run_collection(Wcc(), collections["caut"],
                              ExecutionMode.ADAPTIVE, batch_size=1)

    result = once(benchmark, measure)
    assert result.split_points, "expected splits on C_aut"
    at_slides = [s for s in result.split_points if s % 5 == 0]
    assert len(at_slides) >= len(result.split_points) / 2
