"""Table 2 (§5): diff-only vs scratch, Bellman-Ford vs PageRank, on
similar (C_1K-like) and dissimilar (C_3.5M-like) churn collections.

Paper shape asserted:

* Bellman-Ford prefers diff-only on both collections.
* PageRank (the unstable computation) prefers scratch on the dissimilar
  collection by a wide margin.
"""

import pytest

from benchmarks.conftest import once
from repro.algorithms import BellmanFord, PageRank
from repro.bench.workloads import orkut_churn_collection
from repro.core.executor import ExecutionMode

NODES, EDGES, VIEWS = 150, 750, 10


@pytest.fixture(scope="module")
def similar():
    return orkut_churn_collection(
        num_nodes=NODES, num_edges=EDGES, num_views=VIEWS,
        additions_per_view=1, removals_per_view=1, seed=0, name="C-small")


@pytest.fixture(scope="module")
def dissimilar():
    return orkut_churn_collection(
        num_nodes=NODES, num_edges=EDGES, num_views=VIEWS,
        additions_per_view=int(EDGES * 0.20),
        removals_per_view=int(EDGES * 0.15), seed=1, name="C-large")


class TestBellmanFord:
    def test_similar_diff_only(self, benchmark, run_collection, similar):
        result = once(benchmark, lambda: run_collection(
            BellmanFord(), similar, ExecutionMode.DIFF_ONLY))
        benchmark.extra_info["work"] = result.total_work

    def test_similar_scratch(self, benchmark, run_collection, similar):
        result = once(benchmark, lambda: run_collection(
            BellmanFord(), similar, ExecutionMode.SCRATCH))
        benchmark.extra_info["work"] = result.total_work

    def test_shape_bf_prefers_diff_on_both(self, benchmark, run_collection,
                                           similar, dissimilar):
        def both():
            out = []
            for collection in (similar, dissimilar):
                diff = run_collection(BellmanFord(), collection,
                                      ExecutionMode.DIFF_ONLY)
                scratch = run_collection(BellmanFord(), collection,
                                         ExecutionMode.SCRATCH)
                out.append((collection.name, diff, scratch))
            return out

        for name, diff, scratch in once(benchmark, both):
            assert diff.total_work < scratch.total_work, name


class TestPageRank:
    def test_dissimilar_diff_only(self, benchmark, run_collection,
                                  dissimilar):
        result = once(benchmark, lambda: run_collection(
            PageRank(iterations=6), dissimilar, ExecutionMode.DIFF_ONLY))
        benchmark.extra_info["work"] = result.total_work

    def test_dissimilar_scratch(self, benchmark, run_collection,
                                dissimilar):
        result = once(benchmark, lambda: run_collection(
            PageRank(iterations=6), dissimilar, ExecutionMode.SCRATCH))
        benchmark.extra_info["work"] = result.total_work

    def test_shape_pr_prefers_scratch_on_dissimilar(self, benchmark,
                                                    run_collection,
                                                    dissimilar):
        def both():
            diff = run_collection(PageRank(iterations=6), dissimilar,
                                  ExecutionMode.DIFF_ONLY)
            scratch = run_collection(PageRank(iterations=6), dissimilar,
                                     ExecutionMode.SCRATCH)
            return diff, scratch

        diff, scratch = once(benchmark, both)
        # The paper reports scratch ~1.5x better; direction is the claim.
        assert scratch.total_work < diff.total_work
