"""Engine micro-benchmarks and design-choice ablations.

Not a paper table; these cover the ablations DESIGN.md calls out:

* operator throughput (join, reduce, iterate) as engine baselines;
* Christofides vs greedy vs exact ordering quality (approximation-ratio
  ablation);
* incremental-epoch cost vs first-epoch cost (the sharing primitive all
  headline results rest on).
"""

import random

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.core.ordering.optimizer import order_collection
from repro.differential import Dataflow


def random_keyed_diff(n, keys, seed):
    rng = random.Random(seed)
    return {(rng.randrange(keys), rng.randrange(1000)): 1 for _ in range(n)}


class TestOperatorThroughput:
    def test_map_throughput(self, benchmark):
        df = Dataflow()
        source = df.new_input("in")
        df.capture(source.map(lambda rec: (rec[0], rec[1] + 1)), "out")
        diff = random_keyed_diff(20_000, 5_000, 0)
        once(benchmark, lambda: df.step({"in": diff}))

    def test_join_throughput(self, benchmark):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        df.capture(a.join(b), "out")
        diff_a = random_keyed_diff(8_000, 2_000, 1)
        diff_b = random_keyed_diff(8_000, 2_000, 2)
        once(benchmark, lambda: df.step({"a": diff_a, "b": diff_b}))

    def test_reduce_throughput(self, benchmark):
        df = Dataflow()
        source = df.new_input("in")
        df.capture(source.min_by_key(), "out")
        diff = random_keyed_diff(20_000, 4_000, 3)
        once(benchmark, lambda: df.step({"in": diff}))

    def test_iterate_bfs_throughput(self, benchmark):
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")

        def body(inner, scope):
            e = scope.enter(edges)
            r = scope.enter(roots)
            return inner.join(
                e, lambda u, d, v: (v, d + 1)).concat(r).min_by_key()

        df.capture(roots.iterate(body), "out")
        rng = random.Random(4)
        edge_diff = {}
        while len(edge_diff) < 6_000:
            u, v = rng.randrange(2_000), rng.randrange(2_000)
            if u != v:
                edge_diff[(u, v)] = 1
        once(benchmark, lambda: df.step(
            {"edges": edge_diff, "roots": {(0, 0): 1}}))


class TestSharingPrimitive:
    def test_incremental_epoch_cost(self, benchmark):
        """The sharing primitive: after a full WCC epoch, a single-edge
        update must cost a small fraction of the initial run."""
        df = Dataflow()
        edges = df.new_input("edges")
        labels = df.new_input("labels")

        def body(inner, scope):
            e = scope.enter(edges)
            seed = scope.enter(labels)
            return inner.join(
                e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

        df.capture(labels.iterate(body), "out")
        rng = random.Random(5)
        n = 1_000
        edge_diff = {}
        while len(edge_diff) < 8_000:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edge_diff[(u, v)] = 1
                edge_diff[(v, u)] = 1
        df.step({"edges": edge_diff, "labels": {(v, v): 1 for v in range(n)}})
        first_epoch_work = df.meter.total_work

        def one_update():
            before = df.meter.total_work
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (u, v) in edge_diff:
                return 0
            df.step({"edges": {(u, v): 1, (v, u): 1}})
            return df.meter.total_work - before

        update_work = once(benchmark, one_update)
        assert update_work < first_epoch_work / 20


class TestIdenticalViewsRobustness:
    """§5's best-case bound: on a collection of k IDENTICAL views,
    differential execution costs ~one run while scratch costs k runs —
    the speedup factor must grow with k."""

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_speedup_grows_with_view_count(self, benchmark, run_collection,
                                           k):
        from repro.algorithms import Wcc
        from repro.core.executor import ExecutionMode
        from repro.core.view_collection import collection_from_diffs

        rng = random.Random(0)
        edges = {}
        while len(edges) < 500:
            u, v = rng.randrange(150), rng.randrange(150)
            if u != v:
                edges[(len(edges), u, v, 1)] = 1
        diffs = [dict(edges)] + [{} for _ in range(k - 1)]
        collection = collection_from_diffs(f"identical-{k}", diffs)

        def measure():
            diff = run_collection(Wcc(), collection,
                                  ExecutionMode.DIFF_ONLY)
            scratch = run_collection(Wcc(), collection,
                                     ExecutionMode.SCRATCH)
            return scratch.total_work / max(1, diff.total_work)

        factor = once(benchmark, measure)
        benchmark.extra_info["factor"] = factor
        # All views after the first are free differentially.
        assert factor > 0.9 * k


class TestOrderingAblation:
    @pytest.mark.parametrize("method", ["christofides", "greedy", "random"])
    def test_ordering_method_cost(self, benchmark, method):
        rng = np.random.default_rng(0)
        matrix = rng.random((4_000, 40)) < 0.45
        result = once(benchmark, lambda: order_collection(
            matrix, method=method, seed=1))
        benchmark.extra_info["diff_count"] = result.diff_count

    def test_shape_quality_ranking(self, benchmark):
        """Christofides should (at least weakly) dominate greedy, which
        should dominate the average random order, and stay within 3x of
        exact on small instances."""
        rng = np.random.default_rng(1)

        def measure():
            small = rng.random((300, 7)) < 0.4
            big = rng.random((2_000, 24)) < 0.45
            quality = {
                "chr": order_collection(big, method="christofides").diff_count,
                "greedy": order_collection(big, method="greedy").diff_count,
                "random": int(np.mean([
                    order_collection(big, method="random", seed=s).diff_count
                    for s in range(5)])),
                "chr_small": order_collection(
                    small, method="christofides").diff_count,
                "exact_small": order_collection(
                    small, method="exact").diff_count,
            }
            return quality

        quality = once(benchmark, measure)
        assert quality["chr"] <= quality["greedy"] * 1.1
        assert quality["chr"] < quality["random"]
        assert quality["chr_small"] <= 3 * quality["exact_small"]
