"""Figure 9 (§7.4): ordering benefits on the WTC-like graph (same grid as
Figure 8 / bench_fig8)."""

import pytest

from benchmarks.conftest import once
from repro.algorithms import Bfs, Wcc
from repro.bench.workloads import default_wtc_graph, perturbation_collection
from repro.core.executor import ExecutionMode

CONFIG = (5, 2)


@pytest.fixture(scope="module")
def graph():
    return default_wtc_graph(scale=0.5)


@pytest.fixture(scope="module")
def ordered(graph):
    return perturbation_collection(graph, *CONFIG,
                                   order_method="christofides")


@pytest.fixture(scope="module")
def shuffled(graph):
    return perturbation_collection(graph, *CONFIG, order_method="random",
                                   seed=2)


@pytest.mark.parametrize("ordering", ["ordered", "shuffled"])
@pytest.mark.parametrize("algo", [Wcc, Bfs], ids=["WCC", "BFS"])
@pytest.mark.parametrize("mode", [ExecutionMode.DIFF_ONLY,
                                  ExecutionMode.ADAPTIVE],
                         ids=["no-adapt", "with-adapt"])
def test_grid(benchmark, request, run_collection, ordering, algo, mode):
    collection = request.getfixturevalue(ordering)
    result = once(benchmark, lambda: run_collection(
        algo(), collection, mode, batch_size=1))
    benchmark.extra_info["work"] = result.total_work


def test_shape_ordering_helps_wtc(benchmark, run_collection, ordered,
                                  shuffled):
    def measure():
        ordered_run = run_collection(Wcc(), ordered,
                                     ExecutionMode.DIFF_ONLY)
        shuffled_run = run_collection(Wcc(), shuffled,
                                      ExecutionMode.DIFF_ONLY)
        return ordered_run, shuffled_run

    ordered_run, shuffled_run = once(benchmark, measure)
    assert ordered_run.total_work < shuffled_run.total_work
    assert ordered.total_diffs < shuffled.total_diffs
