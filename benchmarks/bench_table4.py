"""Table 4 (§7.4): #diffs and collection creation time, optimizer order vs
random orders, on the LJ-like and WTC-like perturbation collections.

Shape asserted: the Christofides order produces several-fold fewer
differences than random orders; the ordering overhead keeps collection
creation within a small constant factor of the unordered pipeline.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.workloads import (
    default_lj_graph,
    default_wtc_graph,
    perturbation_collection,
)


@pytest.fixture(scope="module")
def lj_graph():
    return default_lj_graph(scale=1.0)


@pytest.fixture(scope="module")
def wtc_graph():
    return default_wtc_graph(scale=1.0)


class TestLjLike:
    @pytest.mark.parametrize("config", [(10, 5), (7, 4)],
                             ids=["10C5", "7C4"])
    def test_materialize_ordered(self, benchmark, lj_graph, config):
        top_n, k = config
        collection = once(benchmark, lambda: perturbation_collection(
            lj_graph, top_n, k, order_method="christofides"))
        benchmark.extra_info["total_diffs"] = collection.total_diffs
        benchmark.extra_info["views"] = collection.num_views

    @pytest.mark.parametrize("config", [(10, 5), (7, 4)],
                             ids=["10C5", "7C4"])
    def test_materialize_random(self, benchmark, lj_graph, config):
        top_n, k = config
        collection = once(benchmark, lambda: perturbation_collection(
            lj_graph, top_n, k, order_method="random", seed=1))
        benchmark.extra_info["total_diffs"] = collection.total_diffs


@pytest.mark.parametrize("graph_fixture,config", [
    ("lj_graph", (10, 5)), ("lj_graph", (7, 4)),
    ("wtc_graph", (10, 5)), ("wtc_graph", (7, 4)),
], ids=["LJ-10C5", "LJ-7C4", "WTC-10C5", "WTC-7C4"])
def test_shape_ordering_reduces_diffs(benchmark, request, graph_fixture,
                                      config):
    graph = request.getfixturevalue(graph_fixture)
    top_n, k = config

    def measure():
        ordered = perturbation_collection(graph, top_n, k,
                                          order_method="christofides")
        randoms = [perturbation_collection(graph, top_n, k,
                                           order_method="random", seed=s)
                   for s in (1, 2, 3)]
        return ordered, randoms

    ordered, randoms = once(benchmark, measure)
    for random_run in randoms:
        assert ordered.total_diffs < random_run.total_diffs
    best_random = min(r.total_diffs for r in randoms)
    benchmark.extra_info["reduction"] = best_random / ordered.total_diffs
    # The paper sees 2.9x-16.8x; require a clearly material reduction.
    assert best_random / ordered.total_diffs > 1.5
